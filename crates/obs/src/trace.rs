//! The span/event recorder: thread-local buffers drained into a process-wide
//! flight recorder, exported as Chrome-trace JSON.
//!
//! # Design
//!
//! Tracing is **off by default** and every recording entry point starts with
//! a single relaxed load of one [`AtomicBool`] — when disabled, a span is a
//! branch and nothing else, so instrumented hot loops pay no measurable cost
//! (the CI `obs_overhead_pct` bench point guards this < 5% even when
//! *enabled*). When enabled, each thread appends events to its own buffer
//! behind a thread-local handle (one uncontended lock per event, no
//! allocation for the common ≤ 3-argument case) and the exporter sweeps all
//! registered thread buffers at drain time — recording threads never contend
//! with each other.
//!
//! Timestamps are nanoseconds since a process-wide epoch captured once at
//! first use ([`now_ns`]), so events from every thread share one monotonic
//! axis. Cross-process timelines (the `mvn-dist` coordinator merging worker
//! ranks) are aligned by giving each process its own `pid` at export time;
//! Chrome-trace viewers render pids as separate process lanes.
//!
//! # Non-perturbation
//!
//! Recording only reads the clock and appends to side buffers: no code path
//! branches on a numeric result, no synchronization is added on any task
//! dependency edge. Enabling tracing therefore cannot change a single result
//! bit — the workspace's bitwise non-interference suite asserts this for the
//! engine, served and distributed paths.

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Maximum number of `(key, value)` arguments carried inline by an [`Event`]
/// (no heap allocation per event; excess arguments are dropped).
pub const MAX_ARGS: usize = 3;

/// What an [`Event`] marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span begin (`ph: "B"`); must be closed by an [`EventKind::End`] on the
    /// same thread — [`SpanGuard`] guarantees the pairing.
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// A complete span (`ph: "X"`) with an explicit duration: used for phases
    /// whose begin and end are observed on different threads (e.g. a request's
    /// queue wait) or reconstructed after the fact (per-rank aggregates).
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One recorded trace event. `label` is interned ([`intern`]) so events are
/// small and comparisons are pointer-cheap; `ts_ns` is nanoseconds since the
/// process epoch; `tid` is a small per-thread id assigned on first use.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind (span begin/end, complete, instant).
    pub kind: EventKind,
    /// Static (or interned) label.
    pub label: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Recording thread id (process-local, assigned on first use).
    pub tid: u64,
    /// Inline `(key, value)` arguments; only the first `nargs` are valid.
    pub args: [(&'static str, u64); MAX_ARGS],
    /// Number of valid entries in `args`.
    pub nargs: u8,
}

impl Event {
    /// The valid argument slice.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.nargs as usize]
    }
}

fn pack_args(args: &[(&'static str, u64)]) -> ([(&'static str, u64); MAX_ARGS], u8) {
    let mut packed = [("", 0u64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    packed[..n].copy_from_slice(&args[..n]);
    (packed, n as u8)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

type ThreadBuf = Mutex<Vec<Event>>;

/// All per-thread buffers ever registered (buffers outlive their threads so
/// events from finished workers are still swept at drain time).
static THREADS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: OnceCell<(u64, Arc<ThreadBuf>)> = const { OnceCell::new() };
}

/// Is tracing currently enabled? One relaxed load — this is the whole cost of
/// every instrumented site while tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable recording. Captures the process epoch on first enable so
/// all subsequent timestamps share one monotonic axis.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Nanoseconds since the process trace epoch (captured once, on first use).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn with_local<R>(f: impl FnOnce(u64, &ThreadBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let (tid, buf) = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf: Arc<ThreadBuf> = Arc::new(Mutex::new(Vec::new()));
            THREADS.lock().unwrap().push(Arc::clone(&buf));
            (tid, buf)
        });
        f(*tid, buf)
    })
}

fn push(kind: EventKind, label: &'static str, args: &[(&'static str, u64)]) {
    let ts_ns = now_ns();
    let (packed, nargs) = pack_args(args);
    with_local(|tid, buf| {
        buf.lock().unwrap().push(Event {
            kind,
            label,
            ts_ns,
            tid,
            args: packed,
            nargs,
        });
    });
}

/// RAII span: [`span`]/[`span_with`] emit the begin event, dropping the guard
/// emits the matching end. If tracing was disabled at creation the guard is a
/// complete no-op; if it was enabled, the end event is emitted even if
/// tracing is switched off mid-span, so begin/end events always balance.
#[must_use = "dropping the guard ends the span immediately"]
pub struct SpanGuard {
    label: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(label) = self.label {
            push(EventKind::End, label, &[]);
        }
    }
}

/// Open a span with no arguments (see [`span_with`]).
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    span_with(label, &[])
}

/// Open a span carrying up to [`MAX_ARGS`] `(key, value)` arguments. Costs a
/// single relaxed load when tracing is disabled.
#[inline]
pub fn span_with(label: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard { label: None };
    }
    push(EventKind::Begin, label, args);
    SpanGuard { label: Some(label) }
}

/// Record a complete (`ph: "X"`) span from an explicit start timestamp
/// (a previous [`now_ns`]) to now — for phases observed across threads.
#[inline]
pub fn complete_since(label: &'static str, start_ns: u64, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    let dur_ns = end.saturating_sub(start_ns);
    let ts_ns = start_ns.min(end);
    let (packed, nargs) = pack_args(args);
    with_local(|tid, buf| {
        buf.lock().unwrap().push(Event {
            kind: EventKind::Complete { dur_ns },
            label,
            ts_ns,
            tid,
            args: packed,
            nargs,
        });
    });
}

/// Record a complete span with explicit start and duration (reconstructed
/// timelines, e.g. per-rank phase aggregates shipped by `mvn-dist` workers).
#[inline]
pub fn complete_at(label: &'static str, start_ns: u64, dur_ns: u64, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let (packed, nargs) = pack_args(args);
    with_local(|tid, buf| {
        buf.lock().unwrap().push(Event {
            kind: EventKind::Complete { dur_ns },
            label,
            ts_ns: start_ns,
            tid,
            args: packed,
            nargs,
        });
    });
}

/// Record a point-in-time marker.
#[inline]
pub fn instant(label: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    push(EventKind::Instant, label, args);
}

/// Drain every registered thread buffer into one list, sorted by timestamp
/// (stable, so same-timestamp events keep per-thread recording order and
/// begin/end pairs never invert). The recorder is left empty.
pub fn take_events() -> Vec<Event> {
    let threads = THREADS.lock().unwrap();
    let mut all = Vec::new();
    for buf in threads.iter() {
        all.append(&mut buf.lock().unwrap());
    }
    drop(threads);
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Interned copy of a dynamic label: returns a `&'static str` that compares
/// equal (and pointer-equal) for equal inputs. Backed by a leaked read-mostly
/// map; the leak is bounded by the number of *distinct* labels, which for
/// task names is small and fixed.
pub fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<RwLock<BTreeMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| RwLock::new(BTreeMap::new()));
    if let Some(&v) = map.read().unwrap().get(s) {
        return v;
    }
    let mut w = map.write().unwrap();
    if let Some(&v) = w.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    w.insert(s.to_owned(), leaked);
    leaked
}

fn write_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_event(out: &mut String, pid: u64, e: &Event) {
    let (ph, dur): (&str, Option<u64>) = match e.kind {
        EventKind::Begin => ("B", None),
        EventKind::End => ("E", None),
        EventKind::Complete { dur_ns } => ("X", Some(dur_ns)),
        EventKind::Instant => ("i", None),
    };
    out.push_str("{\"name\":\"");
    write_escaped(out, e.label);
    out.push_str("\",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    // Chrome trace timestamps are microseconds; emit fractional µs so ns
    // resolution survives.
    out.push_str(",\"ts\":");
    out.push_str(&format!("{:.3}", e.ts_ns as f64 / 1000.0));
    if let Some(d) = dur {
        out.push_str(",\"dur\":");
        out.push_str(&format!("{:.3}", d as f64 / 1000.0));
    }
    if e.kind == EventKind::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if e.nargs > 0 {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            write_escaped(out, k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push('}');
    }
    out.push('}');
}

/// Render event groups — one `(pid, events)` pair per process lane — as a
/// Chrome-trace (`chrome://tracing` / Perfetto) JSON object.
pub fn export_chrome_trace(groups: &[(u64, &[Event])]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, events) in groups {
        for e in *events {
            if !first {
                out.push(',');
            }
            first = false;
            write_event(&mut out, *pid, e);
        }
    }
    out.push_str("]}");
    out
}

/// Drain the recorder ([`take_events`]) and export it as a single-process
/// Chrome-trace JSON string with the given `pid`.
pub fn export_current(pid: u64) -> String {
    let events = take_events();
    export_chrome_trace(&[(pid, &events)])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the process-global recorder; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = locked();
        set_enabled(false);
        let _ = take_events();
        {
            let _s = span_with("noop", &[("k", 1)]);
            instant("marker", &[]);
            complete_since("phase", now_ns(), &[]);
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_balance_and_nest_per_thread() {
        let _g = locked();
        set_enabled(true);
        let _ = take_events();
        {
            let _outer = span_with("outer", &[("worker", 3)]);
            {
                let _inner = span("inner");
            }
            instant("tick", &[("n", 7)]);
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 5);
        // Per-thread begin/end discipline: a stack replay must stay balanced.
        let mut stack = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::Begin => stack.push(e.label),
                EventKind::End => {
                    assert_eq!(stack.pop(), Some(e.label), "unbalanced end for {}", e.label)
                }
                _ => {}
            }
        }
        assert!(stack.is_empty());
        assert_eq!(events[0].label, "outer");
        assert_eq!(events[0].args(), &[("worker", 3)]);
    }

    #[test]
    fn end_event_still_emitted_if_disabled_mid_span() {
        let _g = locked();
        set_enabled(true);
        let _ = take_events();
        let s = span("torn");
        set_enabled(false);
        drop(s);
        let events = take_events();
        let begins = events.iter().filter(|e| e.kind == EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
    }

    #[test]
    fn multithreaded_events_get_distinct_tids_and_sorted_export() {
        let _g = locked();
        set_enabled(true);
        let _ = take_events();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span_with("work", &[("i", i)]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 8);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread gets its own tid");
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns, "export must be time-sorted");
        }
    }

    #[test]
    fn chrome_export_contains_all_phases_and_valid_framing() {
        let _g = locked();
        set_enabled(true);
        let _ = take_events();
        {
            let _s = span("alpha");
            instant("beta", &[("x", 1)]);
        }
        complete_at("gamma", 10, 20, &[("rank", 2)]);
        set_enabled(false);
        let events = take_events();
        let json = export_chrome_trace(&[(5, &events)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"pid\":5"));
        assert!(json.contains("\"dur\":0.020"));
        assert!(json.contains("\"rank\":2"));
    }

    #[test]
    fn intern_returns_stable_pointers() {
        let a = intern("panel_sweep");
        let b = intern(&String::from("panel_sweep"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "panel_sweep");
        assert_ne!(intern("other"), a);
    }

    #[test]
    fn complete_since_clamps_inverted_clocks() {
        let _g = locked();
        set_enabled(true);
        let _ = take_events();
        // A start stamp "in the future" must not underflow.
        complete_since("weird", now_ns() + 1_000_000_000, &[]);
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::Complete { dur_ns } => assert_eq!(dur_ns, 0),
            _ => panic!("expected complete event"),
        }
    }
}
