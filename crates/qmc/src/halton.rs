//! Halton low-discrepancy sequence.
//!
//! Component `i` of point `j` is the radical-inverse of `j+1` in base `pᵢ`
//! (the `i`-th prime). Works for arbitrary dimension without tables; in very
//! high dimensions the raw Halton sequence develops correlations between
//! coordinates with large prime bases, so for the MVN integration the
//! Richtmyer lattice is the default and Halton is provided as an alternative
//! family for cross-checking QMC error behaviour.

use crate::primes::first_primes;
use crate::PointSet;

/// Halton sequence of dimension `dim` with prime bases 2, 3, 5, …
#[derive(Debug, Clone)]
pub struct HaltonSequence {
    bases: Vec<u64>,
}

impl HaltonSequence {
    /// Create a Halton sequence generator of the given dimension.
    pub fn new(dim: usize) -> Self {
        Self {
            bases: first_primes(dim),
        }
    }

    /// Radical inverse of `n+1` in base `b`.
    fn radical_inverse(mut n: u64, b: u64) -> f64 {
        let mut inv = 0.0f64;
        let mut denom = 1.0f64;
        let bf = b as f64;
        while n > 0 {
            denom *= bf;
            inv += (n % b) as f64 / denom;
            n /= b;
        }
        inv
    }
}

impl PointSet for HaltonSequence {
    fn dim(&self) -> usize {
        self.bases.len()
    }

    fn point(&self, index: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.bases.len());
        let n = (index + 1) as u64;
        for (o, &b) in out.iter_mut().zip(&self.bases) {
            *o = Self::radical_inverse(n, b);
        }
    }

    fn fill_block(&self, first: usize, count: usize, dim0: usize, ndims: usize, out: &mut [f64]) {
        assert!(
            dim0 + ndims <= self.bases.len(),
            "coordinate range out of bounds"
        );
        assert_eq!(out.len(), count * ndims, "output block size mismatch");
        // Coordinates are independent radical inverses, so a block fills one
        // contiguous chain lane per base — bitwise identical to `point`.
        for i in 0..ndims {
            let b = self.bases[dim0 + i];
            for (c, o) in out[i * count..(i + 1) * count].iter_mut().enumerate() {
                *o = Self::radical_inverse((first + c + 1) as u64, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_van_der_corput_known_values() {
        let h = HaltonSequence::new(1);
        // n=1 -> 0.5, n=2 -> 0.25, n=3 -> 0.75, n=4 -> 0.125
        let expect = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for (j, &e) in expect.iter().enumerate() {
            let p = h.point_vec(j);
            assert!((p[0] - e).abs() < 1e-15, "j={j}: {} vs {e}", p[0]);
        }
    }

    #[test]
    fn base3_known_values() {
        let h = HaltonSequence::new(2);
        // Second coordinate uses base 3: n=1 -> 1/3, n=2 -> 2/3, n=3 -> 1/9, n=4 -> 4/9
        let expect = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for (j, &e) in expect.iter().enumerate() {
            let p = h.point_vec(j);
            assert!((p[1] - e).abs() < 1e-15, "j={j}: {} vs {e}", p[1]);
        }
    }

    #[test]
    fn points_in_unit_cube_high_dim() {
        let h = HaltonSequence::new(50);
        let mut out = vec![0.0; 50];
        for j in 0..200 {
            h.point(j, &mut out);
            assert!(out.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn star_discrepancy_proxy_better_than_random_in_2d() {
        // Count points in [0,0.5)^2: should be close to n/4 for Halton.
        let h = HaltonSequence::new(2);
        let n = 1024;
        let mut out = [0.0; 2];
        let mut count = 0;
        for j in 0..n {
            h.point(j, &mut out);
            if out[0] < 0.5 && out[1] < 0.5 {
                count += 1;
            }
        }
        let frac = count as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "fraction {frac}");
    }
}
