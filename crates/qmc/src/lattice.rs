//! Richtmyer rank-1 lattice rule.
//!
//! Point `j` has components `frac((j+1) · √pᵢ)` where `pᵢ` is the `i`-th prime.
//! This is the classic generating vector used by Genz's multivariate normal
//! integration codes (`mvtnorm`, `tlrmvnmvt`): it is extensible in both the
//! number of points and the dimension, needs no tables, and combined with a
//! Cranley–Patterson random shift gives an unbiased estimator with practical
//! error estimates.

use crate::primes::first_primes;
use crate::PointSet;

/// Rank-1 lattice with generating vector `√p₁, …, √p_d` (fractional parts).
#[derive(Debug, Clone)]
pub struct RichtmyerLattice {
    /// Fractional parts of the square roots of the first `dim` primes.
    generators: Vec<f64>,
}

impl RichtmyerLattice {
    /// Create a lattice rule of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        let generators = first_primes(dim)
            .into_iter()
            .map(|p| (p as f64).sqrt().fract())
            .collect();
        Self { generators }
    }

    /// The generating vector (fractional parts of √primes).
    pub fn generators(&self) -> &[f64] {
        &self.generators
    }
}

impl PointSet for RichtmyerLattice {
    fn dim(&self) -> usize {
        self.generators.len()
    }

    fn point(&self, index: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.generators.len());
        // (j+1) so that index 0 is not the all-zeros corner point.
        let j = (index + 1) as f64;
        for (o, &g) in out.iter_mut().zip(&self.generators) {
            let v = (j * g).fract();
            // fract of a positive number is in [0,1); guard against 1.0 from rounding.
            *o = if v >= 1.0 { 0.0 } else { v };
        }
    }

    fn fill_block(&self, first: usize, count: usize, dim0: usize, ndims: usize, out: &mut [f64]) {
        assert!(
            dim0 + ndims <= self.generators.len(),
            "coordinate range out of bounds"
        );
        assert_eq!(out.len(), count * ndims, "output block size mismatch");
        // Each coordinate is an independent Weyl sequence, so a block fills
        // one contiguous chain lane per generator — same expressions as
        // `point`, hence bitwise identical values.
        for i in 0..ndims {
            let g = self.generators[dim0 + i];
            for (c, o) in out[i * count..(i + 1) * count].iter_mut().enumerate() {
                let j = (first + c + 1) as f64;
                let v = (j * g).fract();
                *o = if v >= 1.0 { 0.0 } else { v };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_ranges() {
        let lat = RichtmyerLattice::new(6);
        assert_eq!(lat.dim(), 6);
        let mut out = vec![0.0; 6];
        for j in 0..1000 {
            lat.point(j, &mut out);
            assert!(out.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn first_point_is_generating_vector() {
        let lat = RichtmyerLattice::new(3);
        let p = lat.point_vec(0);
        let sqrt2 = 2.0f64.sqrt().fract();
        let sqrt3 = 3.0f64.sqrt().fract();
        let sqrt5 = 5.0f64.sqrt().fract();
        assert!((p[0] - sqrt2).abs() < 1e-15);
        assert!((p[1] - sqrt3).abs() < 1e-15);
        assert!((p[2] - sqrt5).abs() < 1e-15);
    }

    #[test]
    fn lattice_structure_additivity() {
        // Points satisfy x_{j+k} = frac(x_j + x_k + g) style additive structure:
        // specifically x_j = frac((j+1) g), so x_{j1} + x_{j2} + g ≡ x_{j1+j2+1} (mod 1).
        let lat = RichtmyerLattice::new(4);
        let g = lat.generators().to_vec();
        let a = lat.point_vec(3);
        let b = lat.point_vec(5);
        let c = lat.point_vec(9); // (3+1)+(5+1) = 10 = 9+1
        for i in 0..4 {
            let sum = (a[i] + b[i]).fract();
            let expect = (c[i] + g[i] * 0.0).fract(); // c = frac(10 g) = frac(4g + 6g)
            assert!((sum - expect).abs() < 1e-12 || (sum - expect).abs() > 1.0 - 1e-12);
        }
    }

    #[test]
    fn shift_averaged_lattice_integrates_smooth_function_accurately() {
        // Integrate f(u) = prod(3 u_i^2) over [0,1]^d (exact value 1). A single
        // random shift of a Weyl/Richtmyer rule can be unlucky, so average over
        // several independent shifts (exactly how the MVN integrator uses it)
        // and require small error.
        use crate::{PointSet, ShiftedPointSet, Xoshiro256pp};
        let dim = 5;
        let n = 4096;
        let nshifts = 8;
        let f = |u: &[f64]| u.iter().map(|&x| 3.0 * x * x).product::<f64>();

        let mut rng = Xoshiro256pp::seed_from(17);
        let mut out = vec![0.0; dim];
        let mut estimates = Vec::new();
        for _ in 0..nshifts {
            let lat = ShiftedPointSet::with_random_shift(RichtmyerLattice::new(dim), &mut rng);
            let mut sum = 0.0;
            for j in 0..n {
                lat.point(j, &mut out);
                sum += f(&out);
            }
            estimates.push(sum / n as f64);
        }
        let mean = estimates.iter().sum::<f64>() / nshifts as f64;
        let err = (mean - 1.0).abs();
        assert!(err < 5e-3, "shift-averaged lattice error too large: {err}");
    }
}
