//! # qmc — point sets for (quasi-)Monte-Carlo MVN integration
//!
//! The Separation-of-Variables algorithm turns the multivariate normal
//! probability into an integral over the unit hypercube `[0,1]^{n-1}` which is
//! then evaluated by averaging over `N` sample points (the paper's matrix `R`).
//! This crate provides the point-set machinery:
//!
//! * [`rng::Xoshiro256pp`] — a fast, splittable pseudo-random generator used for
//!   plain Monte-Carlo sampling and for the random shifts of randomized QMC,
//! * [`lattice::RichtmyerLattice`] — the rank-1 lattice rule used by Genz's MVN
//!   codes (component `i` of point `j` is `frac(j·√pᵢ)` for the `i`-th prime),
//! * [`halton::HaltonSequence`] — a radical-inverse low-discrepancy sequence for
//!   arbitrary dimension,
//! * [`PointSet`] — a common trait so the MVN integrator can swap families, and
//!   [`SampleKind`] to select one by value,
//! * [`ShiftedPointSet`] — Cranley–Patterson random shifting, which both removes
//!   QMC bias and provides an error estimate from independent shift replicates.
//!
//! The paper states the sample matrix `R(i,j) ~ U(0,1)`; we default to the
//! randomized Richtmyer lattice (matching the reference `tlrmvnmvt` behaviour)
//! and expose plain pseudo-random sampling for the Monte-Carlo baselines and the
//! MC validation algorithm.

pub mod halton;
pub mod lattice;
pub mod primes;
pub mod rng;

pub use halton::HaltonSequence;
pub use lattice::RichtmyerLattice;
pub use primes::first_primes;
pub use rng::{SplitMix64, Xoshiro256pp};

/// A deterministic point set in `[0,1)^d`: the `j`-th point can be generated
/// independently of all others (important for tile-parallel generation).
pub trait PointSet: Send + Sync {
    /// Dimensionality of the points.
    fn dim(&self) -> usize;
    /// Write the `index`-th point into `out` (`out.len() == dim()`).
    fn point(&self, index: usize, out: &mut [f64]);
    /// Convenience: allocate and return the `index`-th point.
    fn point_vec(&self, index: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.point(index, &mut out);
        out
    }
    /// Fill a chain-major sample block: coordinate `dim0 + i` of point
    /// `first + c` lands at `out[i * count + c]` for `c < count`,
    /// `i < ndims` (one contiguous chain lane per coordinate — the layout of
    /// the PMVN sweep's `w` blocks).
    ///
    /// The values are **bitwise identical** to calling [`PointSet::point`]
    /// per chain and copying out the `dim0..dim0 + ndims` coordinate range;
    /// the default implementation does exactly that. Separable families
    /// (Halton, lattice) override it to generate the requested coordinate
    /// range directly, skipping the `O(dim)` work per chain for the
    /// coordinates outside the block that the column-by-column fill wasted.
    fn fill_block(&self, first: usize, count: usize, dim0: usize, ndims: usize, out: &mut [f64]) {
        assert!(dim0 + ndims <= self.dim(), "coordinate range out of bounds");
        assert_eq!(out.len(), count * ndims, "output block size mismatch");
        let mut buf = vec![0.0; self.dim()];
        for c in 0..count {
            self.point(first + c, &mut buf);
            for i in 0..ndims {
                out[i * count + c] = buf[dim0 + i];
            }
        }
    }
}

/// Which sampling family to use for the MVN integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleKind {
    /// Plain pseudo-random Monte Carlo.
    PseudoRandom,
    /// Richtmyer rank-1 lattice with a Cranley–Patterson random shift.
    #[default]
    RichtmyerLattice,
    /// Halton sequence with a random shift.
    Halton,
}

/// A pseudo-random "point set": point `j` is produced by a counter-seeded RNG,
/// so it is reproducible and order-independent like the deterministic families.
#[derive(Debug, Clone)]
pub struct PseudoPoints {
    dim: usize,
    seed: u64,
}

impl PseudoPoints {
    /// Create a pseudo-random point set of dimension `dim` from a master seed.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self { dim, seed }
    }
}

impl PointSet for PseudoPoints {
    fn dim(&self) -> usize {
        self.dim
    }

    fn point(&self, index: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        // Seed a fresh stream per point; SplitMix64 guarantees well-mixed
        // state even for consecutive seeds.
        let mut rng =
            Xoshiro256pp::seed_from(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for o in out.iter_mut() {
            *o = rng.next_f64();
        }
    }
}

/// A point set with a Cranley–Patterson random shift applied modulo 1.
///
/// Shifting a deterministic QMC rule by an independent uniform vector makes the
/// estimator unbiased; averaging over several independent shifts provides a
/// practical error estimate (the paper's QMC standard error).
#[derive(Debug, Clone)]
pub struct ShiftedPointSet<P: PointSet> {
    inner: P,
    shift: Vec<f64>,
}

impl<P: PointSet> ShiftedPointSet<P> {
    /// Wrap `inner` with the uniform random `shift` (one entry per dimension).
    pub fn new(inner: P, shift: Vec<f64>) -> Self {
        assert_eq!(
            inner.dim(),
            shift.len(),
            "shift length must equal dimension"
        );
        Self { inner, shift }
    }

    /// Wrap `inner` with a shift drawn from `rng`.
    pub fn with_random_shift(inner: P, rng: &mut Xoshiro256pp) -> Self {
        let shift = (0..inner.dim()).map(|_| rng.next_f64()).collect();
        Self::new(inner, shift)
    }

    /// Access the underlying unshifted point set.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The shift vector.
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }
}

impl<P: PointSet> PointSet for ShiftedPointSet<P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn point(&self, index: usize, out: &mut [f64]) {
        self.inner.point(index, out);
        for (o, s) in out.iter_mut().zip(&self.shift) {
            *o = (*o + *s).fract();
        }
    }

    fn fill_block(&self, first: usize, count: usize, dim0: usize, ndims: usize, out: &mut [f64]) {
        self.inner.fill_block(first, count, dim0, ndims, out);
        for i in 0..ndims {
            let s = self.shift[dim0 + i];
            for o in &mut out[i * count..(i + 1) * count] {
                *o = (*o + s).fract();
            }
        }
    }
}

/// Build a boxed point set of the requested family.
///
/// `dim` is the number of integration variables, `seed` controls both the
/// pseudo-random stream and the random shift of the QMC families.
pub fn make_point_set(kind: SampleKind, dim: usize, seed: u64) -> Box<dyn PointSet> {
    let mut rng = Xoshiro256pp::seed_from(seed);
    match kind {
        SampleKind::PseudoRandom => Box::new(PseudoPoints::new(dim, seed)),
        SampleKind::RichtmyerLattice => Box::new(ShiftedPointSet::with_random_shift(
            RichtmyerLattice::new(dim),
            &mut rng,
        )),
        SampleKind::Halton => Box::new(ShiftedPointSet::with_random_shift(
            HaltonSequence::new(dim),
            &mut rng,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_in_unit_cube(ps: &dyn PointSet, npoints: usize) {
        let mut out = vec![0.0; ps.dim()];
        for j in 0..npoints {
            ps.point(j, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert!(
                    (0.0..1.0).contains(&v),
                    "point {j} dim {i} out of range: {v}"
                );
            }
        }
    }

    #[test]
    fn all_families_stay_in_unit_cube() {
        for kind in [
            SampleKind::PseudoRandom,
            SampleKind::RichtmyerLattice,
            SampleKind::Halton,
        ] {
            let ps = make_point_set(kind, 7, 42);
            check_in_unit_cube(ps.as_ref(), 500);
        }
    }

    #[test]
    fn points_are_reproducible_and_order_independent() {
        let ps = make_point_set(SampleKind::RichtmyerLattice, 5, 7);
        let a = ps.point_vec(123);
        let b = ps.point_vec(7);
        let a2 = ps.point_vec(123);
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn shifted_point_set_respects_shift() {
        let lat = RichtmyerLattice::new(3);
        let base = lat.point_vec(5);
        let shifted = ShiftedPointSet::new(lat, vec![0.25, 0.5, 0.75]);
        let s = shifted.point_vec(5);
        for i in 0..3 {
            let expect = (base[i] + [0.25, 0.5, 0.75][i]).fract();
            assert!((s[i] - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn mean_of_each_coordinate_is_about_half() {
        // A crude uniformity check for every family.
        for kind in [
            SampleKind::PseudoRandom,
            SampleKind::RichtmyerLattice,
            SampleKind::Halton,
        ] {
            let dim = 4;
            let n = 4096;
            let ps = make_point_set(kind, dim, 99);
            let mut sums = vec![0.0; dim];
            let mut out = vec![0.0; dim];
            for j in 0..n {
                ps.point(j, &mut out);
                for (s, &v) in sums.iter_mut().zip(&out) {
                    *s += v;
                }
            }
            for (i, s) in sums.iter().enumerate() {
                let mean = s / n as f64;
                assert!((mean - 0.5).abs() < 0.03, "{kind:?} dim {i}: mean {mean}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn shift_length_mismatch_panics() {
        let lat = RichtmyerLattice::new(3);
        let _ = ShiftedPointSet::new(lat, vec![0.1, 0.2]);
    }

    #[test]
    fn fill_block_is_bitwise_identical_to_per_point_generation() {
        // The block-major fill (overridden for the separable families, the
        // default for pseudo-random points) must reproduce the column-by-
        // column path bit for bit — this is what keeps the chain-major PMVN
        // sweep's sample panels identical to the historical layout.
        for kind in [
            SampleKind::PseudoRandom,
            SampleKind::RichtmyerLattice,
            SampleKind::Halton,
        ] {
            let dim = 23;
            let ps = make_point_set(kind, dim, 1234);
            for &(first, count, dim0, ndims) in &[
                (0usize, 7usize, 0usize, 23usize),
                (13, 5, 4, 9),
                (64, 1, 22, 1),
            ] {
                let mut block = vec![0.0; count * ndims];
                ps.fill_block(first, count, dim0, ndims, &mut block);
                for c in 0..count {
                    let point = ps.point_vec(first + c);
                    for i in 0..ndims {
                        assert_eq!(
                            block[i * count + c].to_bits(),
                            point[dim0 + i].to_bits(),
                            "{kind:?}: chain {c}, coordinate {}",
                            dim0 + i
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn fill_block_rejects_out_of_range_coordinates() {
        let ps = make_point_set(SampleKind::RichtmyerLattice, 4, 1);
        let mut block = vec![0.0; 2 * 3];
        ps.fill_block(0, 2, 2, 3, &mut block);
    }
}
