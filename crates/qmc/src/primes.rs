//! Prime number utilities for the Richtmyer lattice (√prime generating vector)
//! and the Halton sequence (prime bases).

/// Return the first `n` prime numbers.
///
/// Uses a simple sieve with an upper-bound estimate from the prime counting
/// function; intended for n up to a few hundred thousand (the MVN dimension),
/// where it runs in milliseconds.
pub fn first_primes(n: usize) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    // Upper bound for the n-th prime: n (ln n + ln ln n) for n >= 6.
    let nf = n as f64;
    let bound = if n < 6 {
        14
    } else {
        (nf * (nf.ln() + nf.ln().ln()) * 1.2).ceil() as usize
    };
    let mut sieve = vec![true; bound + 1];
    sieve[0] = false;
    if bound >= 1 {
        sieve[1] = false;
    }
    let mut i = 2usize;
    while i * i <= bound {
        if sieve[i] {
            let mut j = i * i;
            while j <= bound {
                sieve[j] = false;
                j += i;
            }
        }
        i += 1;
    }
    let mut primes = Vec::with_capacity(n);
    for (p, &is_prime) in sieve.iter().enumerate() {
        if is_prime {
            primes.push(p as u64);
            if primes.len() == n {
                break;
            }
        }
    }
    assert_eq!(primes.len(), n, "prime bound estimate too small for n={n}");
    primes
}

/// `true` if `x` is prime (trial division; used only in tests and assertions).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_few_primes_are_correct() {
        assert_eq!(first_primes(10), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(first_primes(0).is_empty());
        assert_eq!(first_primes(1), vec![2]);
    }

    #[test]
    fn thousandth_prime_is_7919() {
        let p = first_primes(1000);
        assert_eq!(p[999], 7919);
    }

    #[test]
    fn all_returned_values_are_prime_and_increasing() {
        let p = first_primes(500);
        for w in p.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &x in &p {
            assert!(is_prime(x), "{x} not prime");
        }
    }

    #[test]
    fn large_request_works() {
        let p = first_primes(50_000);
        assert_eq!(p.len(), 50_000);
        assert_eq!(p[9999], 104_729); // the 10,000th prime
    }

    #[test]
    fn is_prime_edge_cases() {
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(4));
        assert!(is_prime(97));
        assert!(!is_prime(91)); // 7 * 13
    }
}
