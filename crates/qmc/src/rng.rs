//! Pseudo-random number generation: SplitMix64 (seeding) and xoshiro256++
//! (bulk generation), with jump functions for independent parallel streams.
//!
//! These generators are tiny, allocation-free and reproducible across
//! platforms, which matters for the tile-parallel sample-matrix generation: the
//! random tile `R_{(r,k)}` must not depend on which worker thread generates it.

/// SplitMix64 — used to expand a single `u64` seed into the 256-bit xoshiro
/// state (and usable as a standalone quick generator).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — the general-purpose generator used throughout the
/// workspace for Monte-Carlo sampling and random shifts.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Create a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64 (the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            *slot = sm.next_u64();
        }
        // Guard against the (astronomically unlikely) all-zero state.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal variate via the polar (Marsaglia) method.
    pub fn next_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Jump ahead by 2^128 steps, giving a stream that does not overlap the
    /// current one for any realistic amount of generation. Used to derive
    /// per-worker / per-shift independent streams from a single master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for &j in JUMP.iter() {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }

    /// Derive the `k`-th independent stream from this generator state: clone
    /// and apply `k+1` jumps.
    pub fn stream(&self, k: usize) -> Self {
        let mut g = self.clone();
        for _ in 0..=k {
            g.jump();
        }
        g
    }

    /// Fill a slice with U[0,1) variates.
    pub fn fill_uniform(&mut self, out: &mut [f64]) {
        for o in out.iter_mut() {
            *o = self.next_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_deterministic() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(12346);
        assert_ne!(SplitMix64::new(12345).next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_uniform_in_unit_interval_and_mean_half() {
        let mut rng = Xoshiro256pp::seed_from(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn xoshiro_normal_moments() {
        let mut rng = Xoshiro256pp::seed_from(11);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.next_normal();
            s1 += z;
            s2 += z * z;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn jumped_streams_differ_and_are_reproducible() {
        let base = Xoshiro256pp::seed_from(3);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let mut s0b = base.stream(0);
        let a: Vec<u64> = (0..10).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| s1.next_u64()).collect();
        let a2: Vec<u64> = (0..10).map(|_| s0b.next_u64()).collect();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_does_not_produce_degenerate_stream() {
        let mut rng = Xoshiro256pp::seed_from(0);
        let vals: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fill_uniform_fills_everything() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut buf = vec![-1.0; 64];
        rng.fill_uniform(&mut buf);
        assert!(buf.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
