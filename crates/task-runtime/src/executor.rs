//! Threaded execution of a [`TaskGraph`]: a shared ready queue, one worker per
//! thread, dependency counters decremented as tasks finish.
//!
//! The executor guarantees *worker-count-deterministic results*: every task
//! runs exactly once, all inferred dependencies are honoured, and because each
//! closure performs a fixed computation on the data it declared, the final
//! contents of every data handle are bitwise identical for any number of
//! workers. Only the interleaving (and the [`ExecutionTrace`]) varies.

use crate::graph::TaskGraph;
use crate::pool::WorkerPool;
use std::time::Instant;

/// One executed task, for tracing.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task index within the graph.
    pub task: usize,
    /// Kernel name.
    pub name: String,
    /// Worker thread index that ran the task.
    pub worker: usize,
    /// Start time in seconds since the start of the execution.
    pub start: f64,
    /// End time in seconds since the start of the execution.
    pub end: f64,
}

/// The trace of a graph execution, in completion order.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Per-task execution records.
    pub records: Vec<TaskRecord>,
    /// Wall-clock makespan in seconds.
    pub makespan: f64,
}

/// Run the whole graph inline on the calling thread. Submission order is a
/// valid topological order under the sequential-task-flow contract, so no
/// queue, no thread spawn. This keeps hot call sites that factor many small
/// matrices (e.g. the MLE objective) from paying a thread-pool setup per
/// call; it is the single-worker/small-graph shortcut of both
/// [`run_taskgraph`] and [`WorkerPool::run`](crate::WorkerPool::run).
///
/// Panic semantics match the threaded path: a panicking task does not stop
/// the remaining tasks — the graph drains, and the first panic payload is
/// re-raised at the end — so the "drain then re-raise" contract holds for
/// every worker count, not just multi-worker pools.
pub(crate) fn run_inline(graph: &mut TaskGraph<'_>) -> ExecutionTrace {
    let n = graph.len();
    let t0 = Instant::now();
    let mut records = Vec::with_capacity(n);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for i in 0..n {
        // Per-task trace span, mirroring the threaded worker loop (inline
        // execution is always "worker 0"); one relaxed load when tracing is
        // off.
        let span = obs::enabled()
            .then(|| obs::span_with(obs::intern(&graph.spec(i).name), &[("worker", 0)]));
        let start = t0.elapsed().as_secs_f64();
        if let Some(f) = graph.take_closure(i) {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                first_panic.get_or_insert(payload);
            }
        }
        let end = t0.elapsed().as_secs_f64();
        drop(span);
        records.push(TaskRecord {
            task: i,
            name: graph.spec(i).name.clone(),
            worker: 0,
            start,
            end,
        });
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    let makespan = records.last().map(|r| r.end).unwrap_or(0.0);
    ExecutionTrace { records, makespan }
}

/// Execute all tasks of the graph on `workers` threads, honouring the inferred
/// dependencies. Closures submitted as `None` are treated as instantaneous
/// no-ops (their dependencies still matter).
///
/// This is the one-shot entry point of the numerical pipeline: a thin wrapper
/// that borrows a throwaway [`WorkerPool`] for the duration of the call
/// (single-worker and trivially small graphs run inline without spawning
/// anything). Call sites that execute many graphs should hold a
/// [`WorkerPool`] — or an `mvn_core::MvnEngine` — and reuse it instead of
/// paying the pool setup per graph. The result of the computation performed
/// by the closures is deterministic in the worker count (see the module
/// docs).
pub fn run_taskgraph<'a>(graph: &mut TaskGraph<'a>, workers: usize) -> ExecutionTrace {
    let n = graph.len();
    if n == 0 {
        return ExecutionTrace::default();
    }
    if workers <= 1 || n <= 2 {
        return run_inline(graph);
    }
    WorkerPool::new(workers).run(graph)
}

/// Historical name of [`run_taskgraph`], kept for the existing call sites.
pub fn execute_graph<'a>(graph: &mut TaskGraph<'a>, workers: usize) -> ExecutionTrace {
    run_taskgraph(graph, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::{AccessMode, TaskSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn empty_graph_executes_trivially() {
        let mut g = TaskGraph::new();
        let trace = execute_graph(&mut g, 4);
        assert!(trace.records.is_empty());
        assert_eq!(trace.makespan, 0.0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let mut reg = HandleRegistry::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..50 {
            let h = reg.register(format!("h{i}"));
            let c = Arc::clone(&counter);
            g.submit(
                TaskSpec::new("inc").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let trace = execute_graph(&mut g, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(trace.records.len(), 50);
        let mut ids: Vec<usize> = trace.records.iter().map(|r| r.task).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_are_respected_in_the_trace() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let order = Arc::clone(&order);
            g.submit(
                TaskSpec::new(format!("t{i}")).access(x, AccessMode::ReadWrite),
                Some(Box::new(move || order.lock().unwrap().push(i))),
            );
        }
        let trace = execute_graph(&mut g, 6);
        assert_eq!(order.lock().unwrap().clone(), (0..10).collect::<Vec<_>>());
        // Trace start times along the chain are non-decreasing.
        let mut by_task = trace.records.clone();
        by_task.sort_by_key(|r| r.task);
        for w in by_task.windows(2) {
            assert!(w[1].start >= w[0].start - 1e-9);
        }
    }

    #[test]
    fn single_worker_execution_works() {
        let mut reg = HandleRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut g = TaskGraph::new();
        let total = Arc::new(AtomicUsize::new(0));
        for (h, v) in [(a, 1usize), (b, 2), (a, 4), (b, 8)] {
            let total = Arc::clone(&total);
            g.submit(
                TaskSpec::new("acc").access(h, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    total.fetch_add(v, Ordering::SeqCst);
                })),
            );
        }
        execute_graph(&mut g, 1);
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn closures_may_borrow_the_submitting_scope() {
        // The point of the lifetime-generic graph: tasks can borrow stack
        // data (here a plain atomic) without Arc.
        let counter = AtomicUsize::new(0);
        let mut reg = HandleRegistry::new();
        let mut g = TaskGraph::new();
        for i in 0..16 {
            let h = reg.register(format!("h{i}"));
            let counter = &counter;
            g.submit(
                TaskSpec::new("borrow").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                })),
            );
        }
        run_taskgraph(&mut g, 4);
        assert_eq!(counter.load(Ordering::SeqCst), (0..16).sum());
    }

    #[test]
    fn inline_execution_drains_on_panic_like_the_threaded_path() {
        // workers = 1 takes the inline path; its panic contract must match
        // the pool's: every other task still runs, then the panic re-raises.
        let mut reg = HandleRegistry::new();
        let done = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        for i in 0..12 {
            let h = reg.register(format!("h{i}"));
            let done = &done;
            g.submit(
                TaskSpec::new("maybe_panic").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_taskgraph(&mut g, 1);
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        assert_eq!(done.load(Ordering::SeqCst), 11, "the graph must drain");
    }

    #[test]
    fn panicking_task_propagates_instead_of_hanging() {
        // Regression: with 2+ workers, a panicking closure used to leave
        // `remaining` above zero and the other workers asleep forever. The
        // completion guard must drain the graph and re-raise the panic.
        let mut reg = HandleRegistry::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..12 {
            let h = reg.register(format!("h{i}"));
            let done = Arc::clone(&done);
            g.submit(
                TaskSpec::new("maybe_panic").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_taskgraph(&mut g, 4);
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        // Every non-panicking task still ran (the graph drained).
        assert_eq!(done.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn war_hazard_readers_complete_before_writer() {
        // read(x) by many tasks, then write(x): the writer must observe every
        // reader's side effect (write-after-read ordering).
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let reads_done = AtomicUsize::new(0);
        let seen_at_write = AtomicUsize::new(usize::MAX);
        let mut g = TaskGraph::new();
        g.submit(
            TaskSpec::new("init").access(x, AccessMode::Write),
            Some(Box::new(|| {})),
        );
        for _ in 0..8 {
            let reads_done = &reads_done;
            g.submit(
                TaskSpec::new("read").access(x, AccessMode::Read),
                Some(Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    reads_done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        {
            let reads_done = &reads_done;
            let seen_at_write = &seen_at_write;
            g.submit(
                TaskSpec::new("write").access(x, AccessMode::Write),
                Some(Box::new(move || {
                    seen_at_write.store(reads_done.load(Ordering::SeqCst), Ordering::SeqCst);
                })),
            );
        }
        run_taskgraph(&mut g, 4);
        assert_eq!(seen_at_write.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn waw_hazard_writes_apply_in_submission_order() {
        // Two writers of the same handle must serialize in submission order
        // even when the second is submitted while many workers are idle.
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let value = Mutex::new(0u64);
        let mut g = TaskGraph::new();
        for k in 1..=6u64 {
            let value = &value;
            g.submit(
                TaskSpec::new(format!("w{k}")).access(x, AccessMode::Write),
                Some(Box::new(move || {
                    let mut v = value.lock().unwrap();
                    *v = *v * 10 + k;
                })),
            );
        }
        run_taskgraph(&mut g, 8);
        assert_eq!(*value.lock().unwrap(), 123_456);
    }
}
