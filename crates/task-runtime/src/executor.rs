//! Threaded execution of a [`TaskGraph`]: a shared ready queue, one worker per
//! thread, dependency counters decremented as tasks finish.
//!
//! The executor guarantees *worker-count-deterministic results*: every task
//! runs exactly once, all inferred dependencies are honoured, and because each
//! closure performs a fixed computation on the data it declared, the final
//! contents of every data handle are bitwise identical for any number of
//! workers. Only the interleaving (and the [`ExecutionTrace`]) varies.

use crate::graph::{TaskClosure, TaskGraph};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One executed task, for tracing.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task index within the graph.
    pub task: usize,
    /// Kernel name.
    pub name: String,
    /// Worker thread index that ran the task.
    pub worker: usize,
    /// Start time in seconds since the start of the execution.
    pub start: f64,
    /// End time in seconds since the start of the execution.
    pub end: f64,
}

/// The trace of a graph execution, in completion order.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Per-task execution records.
    pub records: Vec<TaskRecord>,
    /// Wall-clock makespan in seconds.
    pub makespan: f64,
}

/// Blocking MPMC ready-queue: a mutex-protected deque plus a condvar. Workers
/// sleep when no task is ready and are woken either by a new ready task or by
/// global completion.
struct ReadyQueue {
    deque: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    fn new() -> Self {
        Self {
            deque: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, task: usize) {
        self.deque.lock().unwrap().push_back(task);
        self.cv.notify_one();
    }

    /// Pop a ready task, or `None` once `remaining` hits zero.
    fn pop(&self, remaining: &AtomicUsize) -> Option<usize> {
        let mut q = self.deque.lock().unwrap();
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if remaining.load(Ordering::SeqCst) == 0 {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Wake every sleeping worker (used on completion). Taking the lock first
    /// closes the check-then-wait race: a worker holding the lock has either
    /// not yet checked `remaining` (and will see zero) or is already waiting
    /// (and receives the notification).
    fn wake_all(&self) {
        let _guard = self.deque.lock().unwrap();
        self.cv.notify_all();
    }
}

/// Execute all tasks of the graph on `workers` threads, honouring the inferred
/// dependencies. Closures submitted as `None` are treated as instantaneous
/// no-ops (their dependencies still matter).
///
/// This is the `run_taskgraph` entry point of the numerical pipeline: the
/// result of the computation performed by the closures is deterministic in the
/// worker count (see the module docs).
pub fn run_taskgraph<'a>(graph: &mut TaskGraph<'a>, workers: usize) -> ExecutionTrace {
    let n = graph.len();
    if n == 0 {
        return ExecutionTrace::default();
    }
    let workers = workers.max(1);

    // Single-worker (or trivially small) graphs: run inline on the calling
    // thread. Submission order is a valid topological order under the
    // sequential-task-flow contract, so no queue, no thread spawn, and any
    // task panic propagates directly to the caller. This keeps hot call
    // sites that factor many small matrices (e.g. the MLE objective) from
    // paying a thread-pool setup per call.
    if workers == 1 || n <= 2 {
        let t0 = Instant::now();
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let start = t0.elapsed().as_secs_f64();
            if let Some(f) = graph.take_closure(i) {
                f();
            }
            let end = t0.elapsed().as_secs_f64();
            records.push(TaskRecord {
                task: i,
                name: graph.spec(i).name.clone(),
                worker: 0,
                start,
                end,
            });
        }
        let makespan = records.last().map(|r| r.end).unwrap_or(0.0);
        return ExecutionTrace { records, makespan };
    }

    // Pull the closures out; the DAG structure itself stays shared read-only.
    let mut closures: Vec<Option<TaskClosure<'a>>> = Vec::with_capacity(n);
    for i in 0..n {
        closures.push(graph.take_closure(i));
    }
    let closures: Vec<Mutex<Option<TaskClosure<'a>>>> =
        closures.into_iter().map(Mutex::new).collect();

    let pending: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(graph.dependencies(i).len()))
        .collect();
    let remaining = AtomicUsize::new(n);

    let queue = ReadyQueue::new();
    for i in 0..n {
        if graph.dependencies(i).is_empty() {
            queue.push(i);
        }
    }

    // Copy out the structural information the workers need, so the graph
    // itself (whose closure storage is not `Sync`) is not shared across
    // threads.
    let dependents: Vec<Vec<usize>> = (0..n).map(|i| graph.dependents(i).to_vec()).collect();
    let names: Vec<String> = (0..n).map(|i| graph.spec(i).name.clone()).collect();

    let records: Mutex<Vec<TaskRecord>> = Mutex::new(Vec::with_capacity(n));
    let t0 = Instant::now();
    let dependents_ref = &dependents;
    let names_ref = &names;
    let pending_ref = &pending;
    let remaining_ref = &remaining;
    let closures_ref = &closures;
    let records_ref = &records;
    let queue_ref = &queue;

    /// Releases a finished task's dependents and decrements the global
    /// counter *on drop*, so the bookkeeping also runs when the task closure
    /// panics. Without it, a panicking worker would leave `remaining` above
    /// zero and every other worker asleep on the condvar forever; with it the
    /// graph drains, the workers exit, and `thread::scope` re-raises the
    /// panic at the call site.
    struct CompletionGuard<'g> {
        task: usize,
        dependents: &'g [Vec<usize>],
        pending: &'g [AtomicUsize],
        remaining: &'g AtomicUsize,
        queue: &'g ReadyQueue,
    }

    impl Drop for CompletionGuard<'_> {
        fn drop(&mut self) {
            for &dep in &self.dependents[self.task] {
                if self.pending[dep].fetch_sub(1, Ordering::SeqCst) == 1 {
                    self.queue.push(dep);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.queue.wake_all();
            }
        }
    }

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            scope.spawn(move || {
                while let Some(task) = queue_ref.pop(remaining_ref) {
                    let _completion = CompletionGuard {
                        task,
                        dependents: dependents_ref,
                        pending: pending_ref,
                        remaining: remaining_ref,
                        queue: queue_ref,
                    };
                    let start = t0.elapsed().as_secs_f64();
                    let closure = closures_ref[task].lock().unwrap().take();
                    if let Some(f) = closure {
                        f();
                    }
                    let end = t0.elapsed().as_secs_f64();
                    records_ref.lock().unwrap().push(TaskRecord {
                        task,
                        name: names_ref[task].clone(),
                        worker: worker_id,
                        start,
                        end,
                    });
                }
            });
        }
    });

    let mut records = records.into_inner().unwrap();
    records.sort_by(|a, b| a.end.partial_cmp(&b.end).unwrap());
    let makespan = records.last().map(|r| r.end).unwrap_or(0.0);
    ExecutionTrace { records, makespan }
}

/// Historical name of [`run_taskgraph`], kept for the existing call sites.
pub fn execute_graph<'a>(graph: &mut TaskGraph<'a>, workers: usize) -> ExecutionTrace {
    run_taskgraph(graph, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::{AccessMode, TaskSpec};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn empty_graph_executes_trivially() {
        let mut g = TaskGraph::new();
        let trace = execute_graph(&mut g, 4);
        assert!(trace.records.is_empty());
        assert_eq!(trace.makespan, 0.0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let mut reg = HandleRegistry::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..50 {
            let h = reg.register(format!("h{i}"));
            let c = Arc::clone(&counter);
            g.submit(
                TaskSpec::new("inc").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let trace = execute_graph(&mut g, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(trace.records.len(), 50);
        let mut ids: Vec<usize> = trace.records.iter().map(|r| r.task).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_are_respected_in_the_trace() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let order = Arc::clone(&order);
            g.submit(
                TaskSpec::new(format!("t{i}")).access(x, AccessMode::ReadWrite),
                Some(Box::new(move || order.lock().unwrap().push(i))),
            );
        }
        let trace = execute_graph(&mut g, 6);
        assert_eq!(order.lock().unwrap().clone(), (0..10).collect::<Vec<_>>());
        // Trace start times along the chain are non-decreasing.
        let mut by_task = trace.records.clone();
        by_task.sort_by_key(|r| r.task);
        for w in by_task.windows(2) {
            assert!(w[1].start >= w[0].start - 1e-9);
        }
    }

    #[test]
    fn single_worker_execution_works() {
        let mut reg = HandleRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut g = TaskGraph::new();
        let total = Arc::new(AtomicUsize::new(0));
        for (h, v) in [(a, 1usize), (b, 2), (a, 4), (b, 8)] {
            let total = Arc::clone(&total);
            g.submit(
                TaskSpec::new("acc").access(h, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    total.fetch_add(v, Ordering::SeqCst);
                })),
            );
        }
        execute_graph(&mut g, 1);
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn closures_may_borrow_the_submitting_scope() {
        // The point of the lifetime-generic graph: tasks can borrow stack
        // data (here a plain atomic) without Arc.
        let counter = AtomicUsize::new(0);
        let mut reg = HandleRegistry::new();
        let mut g = TaskGraph::new();
        for i in 0..16 {
            let h = reg.register(format!("h{i}"));
            let counter = &counter;
            g.submit(
                TaskSpec::new("borrow").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                })),
            );
        }
        run_taskgraph(&mut g, 4);
        assert_eq!(counter.load(Ordering::SeqCst), (0..16).sum());
    }

    #[test]
    fn panicking_task_propagates_instead_of_hanging() {
        // Regression: with 2+ workers, a panicking closure used to leave
        // `remaining` above zero and the other workers asleep forever. The
        // completion guard must drain the graph and re-raise the panic.
        let mut reg = HandleRegistry::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..12 {
            let h = reg.register(format!("h{i}"));
            let done = Arc::clone(&done);
            g.submit(
                TaskSpec::new("maybe_panic").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_taskgraph(&mut g, 4);
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        // Every non-panicking task still ran (the graph drained).
        assert_eq!(done.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn war_hazard_readers_complete_before_writer() {
        // read(x) by many tasks, then write(x): the writer must observe every
        // reader's side effect (write-after-read ordering).
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let reads_done = AtomicUsize::new(0);
        let seen_at_write = AtomicUsize::new(usize::MAX);
        let mut g = TaskGraph::new();
        g.submit(
            TaskSpec::new("init").access(x, AccessMode::Write),
            Some(Box::new(|| {})),
        );
        for _ in 0..8 {
            let reads_done = &reads_done;
            g.submit(
                TaskSpec::new("read").access(x, AccessMode::Read),
                Some(Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    reads_done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        {
            let reads_done = &reads_done;
            let seen_at_write = &seen_at_write;
            g.submit(
                TaskSpec::new("write").access(x, AccessMode::Write),
                Some(Box::new(move || {
                    seen_at_write.store(reads_done.load(Ordering::SeqCst), Ordering::SeqCst);
                })),
            );
        }
        run_taskgraph(&mut g, 4);
        assert_eq!(seen_at_write.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn waw_hazard_writes_apply_in_submission_order() {
        // Two writers of the same handle must serialize in submission order
        // even when the second is submitted while many workers are idle.
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let value = Mutex::new(0u64);
        let mut g = TaskGraph::new();
        for k in 1..=6u64 {
            let value = &value;
            g.submit(
                TaskSpec::new(format!("w{k}")).access(x, AccessMode::Write),
                Some(Box::new(move || {
                    let mut v = value.lock().unwrap();
                    *v = *v * 10 + k;
                })),
            );
        }
        run_taskgraph(&mut g, 8);
        assert_eq!(*value.lock().unwrap(), 123_456);
    }
}
