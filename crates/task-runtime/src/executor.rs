//! Threaded execution of a [`TaskGraph`]: a shared ready queue, one worker per
//! thread, dependency counters decremented as tasks finish.

use crate::graph::{TaskClosure, TaskGraph};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One executed task, for tracing.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task index within the graph.
    pub task: usize,
    /// Kernel name.
    pub name: String,
    /// Worker thread index that ran the task.
    pub worker: usize,
    /// Start time in seconds since the start of the execution.
    pub start: f64,
    /// End time in seconds since the start of the execution.
    pub end: f64,
}

/// The trace of a graph execution, in completion order.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Per-task execution records.
    pub records: Vec<TaskRecord>,
    /// Wall-clock makespan in seconds.
    pub makespan: f64,
}

/// Execute all tasks of the graph on `workers` threads, honouring the inferred
/// dependencies. Closures submitted as `None` are treated as instantaneous
/// no-ops (their dependencies still matter).
pub fn execute_graph(graph: &mut TaskGraph, workers: usize) -> ExecutionTrace {
    let n = graph.len();
    if n == 0 {
        return ExecutionTrace::default();
    }
    let workers = workers.max(1);

    // Pull the closures out; the DAG structure itself stays shared read-only.
    let mut closures: Vec<Option<TaskClosure>> = Vec::with_capacity(n);
    for i in 0..n {
        closures.push(graph.take_closure(i));
    }
    let closures: Vec<Mutex<Option<TaskClosure>>> =
        closures.into_iter().map(Mutex::new).collect();

    let pending: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(graph.dependencies(i).len()))
        .collect();
    let remaining = AtomicUsize::new(n);

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..n {
        if graph.dependencies(i).is_empty() {
            tx.send(i).expect("queue push");
        }
    }

    // Copy out the structural information the workers need, so the graph
    // itself (whose closure storage is not `Sync`) is not shared across
    // threads.
    let dependents: Vec<Vec<usize>> = (0..n).map(|i| graph.dependents(i).to_vec()).collect();
    let names: Vec<String> = (0..n).map(|i| graph.spec(i).name.clone()).collect();

    let records: Mutex<Vec<TaskRecord>> = Mutex::new(Vec::with_capacity(n));
    let t0 = Instant::now();
    let dependents_ref = &dependents;
    let names_ref = &names;
    let pending_ref = &pending;
    let remaining_ref = &remaining;
    let closures_ref = &closures;
    let records_ref = &records;
    let tx = Arc::new(tx);

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let rx = rx.clone();
            let tx = Arc::clone(&tx);
            scope.spawn(move || loop {
                if remaining_ref.load(Ordering::SeqCst) == 0 {
                    return;
                }
                let Ok(task) = rx.recv_timeout(std::time::Duration::from_millis(1)) else {
                    continue;
                };
                let start = t0.elapsed().as_secs_f64();
                if let Some(f) = closures_ref[task].lock().take() {
                    f();
                }
                let end = t0.elapsed().as_secs_f64();
                records_ref.lock().push(TaskRecord {
                    task,
                    name: names_ref[task].clone(),
                    worker: worker_id,
                    start,
                    end,
                });
                for &dep in &dependents_ref[task] {
                    if pending_ref[dep].fetch_sub(1, Ordering::SeqCst) == 1 {
                        let _ = tx.send(dep);
                    }
                }
                remaining_ref.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    let mut records = records.into_inner();
    records.sort_by(|a, b| a.end.partial_cmp(&b.end).unwrap());
    let makespan = records.last().map(|r| r.end).unwrap_or(0.0);
    ExecutionTrace { records, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::{AccessMode, TaskSpec};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_graph_executes_trivially() {
        let mut g = TaskGraph::new();
        let trace = execute_graph(&mut g, 4);
        assert!(trace.records.is_empty());
        assert_eq!(trace.makespan, 0.0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let mut reg = HandleRegistry::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..50 {
            let h = reg.register(format!("h{i}"));
            let c = Arc::clone(&counter);
            g.submit(
                TaskSpec::new("inc").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let trace = execute_graph(&mut g, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(trace.records.len(), 50);
        let mut ids: Vec<usize> = trace.records.iter().map(|r| r.task).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_are_respected_in_the_trace() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let order = Arc::clone(&order);
            g.submit(
                TaskSpec::new(format!("t{i}")).access(x, AccessMode::ReadWrite),
                Some(Box::new(move || order.lock().push(i))),
            );
        }
        let trace = execute_graph(&mut g, 6);
        assert_eq!(order.lock().clone(), (0..10).collect::<Vec<_>>());
        // Trace start times along the chain are non-decreasing.
        let mut by_task = trace.records.clone();
        by_task.sort_by_key(|r| r.task);
        for w in by_task.windows(2) {
            assert!(w[1].start >= w[0].start - 1e-9);
        }
    }

    #[test]
    fn single_worker_execution_works() {
        let mut reg = HandleRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut g = TaskGraph::new();
        let total = Arc::new(AtomicUsize::new(0));
        for (h, v) in [(a, 1usize), (b, 2), (a, 4), (b, 8)] {
            let total = Arc::clone(&total);
            g.submit(
                TaskSpec::new("acc").access(h, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    total.fetch_add(v, Ordering::SeqCst);
                })),
            );
        }
        execute_graph(&mut g, 1);
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }
}
