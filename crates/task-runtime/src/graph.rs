//! Dependency inference from sequential task submission (the
//! "sequential task flow" model of StarPU/Chameleon).

use crate::handle::DataHandle;
use crate::task::TaskSpec;
use std::collections::HashMap;

/// Work item executed by the threaded executor. The lifetime lets task
/// closures borrow data owned by the submitting scope (e.g. a
/// [`TileStore`](crate::TileStore)); the executor runs them on scoped threads,
/// so no `'static` bound is needed.
pub type TaskClosure<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Anything tasks can be submitted to in program order under the
/// sequential-task-flow contract: a materialized [`TaskGraph`] (every task
/// stored, executed later) or a
/// [`StreamSubmitter`](crate::StreamSubmitter) (tasks handed to the worker
/// pool immediately, bounded lookahead window).
///
/// Task producers — the tiled/TLR Cholesky submission loops, the PMVN sweep —
/// are written against this trait, so the same submission code drives both
/// execution modes; the dependency semantics (and the resulting data, bitwise)
/// are identical.
pub trait TaskSink<'a> {
    /// Submit a task with its declared accesses and optional closure;
    /// dependencies on earlier submissions are inferred from the access
    /// declarations. Returns the submission index.
    fn submit_task(&mut self, spec: TaskSpec, closure: Option<TaskClosure<'a>>) -> usize;
}

impl<'a> TaskSink<'a> for TaskGraph<'a> {
    fn submit_task(&mut self, spec: TaskSpec, closure: Option<TaskClosure<'a>>) -> usize {
        self.submit(spec, closure)
    }
}

/// The sequential-task-flow hazard state — last writer and readers since the
/// last write, per handle — shared by the materialized [`TaskGraph`] and the
/// streaming [`StreamSubmitter`](crate::StreamSubmitter), so the two
/// submission modes cannot drift apart in their dependency semantics (the
/// bitwise streaming-vs-materialized identity rests on them inferring the
/// same edges).
#[derive(Debug, Default)]
pub(crate) struct HazardTracker {
    last_writer: HashMap<DataHandle, usize>,
    readers_since_write: HashMap<DataHandle, Vec<usize>>,
}

impl HazardTracker {
    /// The dependencies a task with `spec`'s accesses acquires on earlier
    /// submissions: read-after-write, write-after-write and write-after-read
    /// edges, sorted and deduplicated.
    pub(crate) fn dependencies(&self, spec: &TaskSpec) -> Vec<usize> {
        let mut deps: Vec<usize> = Vec::new();
        for (handle, mode) in &spec.accesses {
            if mode.reads() {
                // Read-after-write.
                if let Some(&w) = self.last_writer.get(handle) {
                    deps.push(w);
                }
            }
            if mode.writes() {
                // Write-after-write.
                if let Some(&w) = self.last_writer.get(handle) {
                    deps.push(w);
                }
                // Write-after-read.
                if let Some(readers) = self.readers_since_write.get(handle) {
                    deps.extend_from_slice(readers);
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Record the accesses of the just-submitted task `id`. `retain_reader`
    /// filters a handle's reader list before `id` is appended: the
    /// materialized graph keeps every reader (`|_| true`), while the
    /// streaming submitter drops already-retired readers here — a
    /// write-after-read edge to a retired task is trivially satisfied — so
    /// its per-handle metadata stays bounded by the lookahead window instead
    /// of growing with the total read count.
    pub(crate) fn record(
        &mut self,
        spec: &TaskSpec,
        id: usize,
        mut retain_reader: impl FnMut(usize) -> bool,
    ) {
        for (handle, mode) in &spec.accesses {
            if mode.writes() {
                self.last_writer.insert(*handle, id);
                self.readers_since_write.remove(handle);
            } else if mode.reads() {
                let readers = self.readers_since_write.entry(*handle).or_default();
                readers.retain(|&d| retain_reader(d));
                readers.push(id);
            }
        }
    }
}

/// A task DAG built by submitting tasks in program order.
///
/// The lifetime parameter is the lifetime of the data borrowed by the task
/// closures; graphs without closures (pure dependency structure, as used by
/// the `distsim` crate) can use `TaskGraph<'static>`.
#[derive(Default)]
pub struct TaskGraph<'a> {
    specs: Vec<TaskSpec>,
    closures: Vec<Option<TaskClosure<'a>>>,
    /// `deps[i]` = indices of tasks that must complete before task `i`.
    deps: Vec<Vec<usize>>,
    /// `dependents[i]` = tasks waiting on task `i`.
    dependents: Vec<Vec<usize>>,
    hazards: HazardTracker,
}

impl<'a> TaskGraph<'a> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a task; its dependencies on previously submitted tasks are
    /// inferred from the declared data accesses. Returns the task index.
    pub fn submit(&mut self, spec: TaskSpec, closure: Option<TaskClosure<'a>>) -> usize {
        let id = self.specs.len();
        let mut deps = self.hazards.dependencies(&spec);
        deps.retain(|&d| d != id);

        // Update the bookkeeping after computing dependencies; a materialized
        // graph keeps every reader (all tasks exist until execution).
        self.hazards.record(&spec, id, |_| true);

        for &d in &deps {
            self.dependents[d].push(id);
        }
        self.deps.push(deps);
        self.dependents.push(Vec::new());
        self.specs.push(spec);
        self.closures.push(closure);
        id
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if no tasks have been submitted.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specification of task `i`.
    pub fn spec(&self, i: usize) -> &TaskSpec {
        &self.specs[i]
    }

    /// Direct dependencies of task `i`.
    pub fn dependencies(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Tasks directly depending on task `i`.
    pub fn dependents(&self, i: usize) -> &[usize] {
        &self.dependents[i]
    }

    /// Take the closure of task `i` (used by the executor).
    pub(crate) fn take_closure(&mut self, i: usize) -> Option<TaskClosure<'a>> {
        self.closures[i].take()
    }

    /// Total cost of all tasks (the sequential execution time of the DAG under
    /// the abstract cost model).
    pub fn total_cost(&self) -> f64 {
        self.specs.iter().map(|s| s.cost).sum()
    }

    /// Length of the critical path under the abstract cost model (a lower
    /// bound on any parallel schedule).
    pub fn critical_path_cost(&self) -> f64 {
        let n = self.len();
        let mut finish = vec![0.0f64; n];
        for i in 0..n {
            let ready = self.deps[i]
                .iter()
                .map(|&d| finish[d])
                .fold(0.0f64, f64::max);
            finish[i] = ready + self.specs[i].cost;
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Number of tasks per kernel name (useful for reporting).
    pub fn kernel_counts(&self) -> HashMap<String, usize> {
        let mut counts = HashMap::new();
        for s in &self.specs {
            *counts.entry(s.name.clone()).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::AccessMode;

    fn spec(name: &str, accesses: &[(DataHandle, AccessMode)], cost: f64) -> TaskSpec {
        let mut t = TaskSpec::new(name).cost(cost);
        for &(h, m) in accesses {
            t = t.access(h, m);
        }
        t
    }

    #[test]
    fn raw_war_waw_dependencies_are_inferred() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        let w0 = g.submit(spec("write0", &[(x, AccessMode::Write)], 1.0), None);
        let r1 = g.submit(spec("read1", &[(x, AccessMode::Read)], 1.0), None);
        let r2 = g.submit(spec("read2", &[(x, AccessMode::Read)], 1.0), None);
        let w3 = g.submit(spec("write3", &[(x, AccessMode::Write)], 1.0), None);
        let r4 = g.submit(spec("read4", &[(x, AccessMode::Read)], 1.0), None);

        assert!(g.dependencies(w0).is_empty());
        assert_eq!(g.dependencies(r1), &[w0]);
        assert_eq!(g.dependencies(r2), &[w0]);
        // Write3 waits for the previous writer and both readers.
        assert_eq!(g.dependencies(w3), &[w0, r1, r2]);
        assert_eq!(g.dependencies(r4), &[w3]);
        assert_eq!(g.dependents(w0), &[r1, r2, w3]);
    }

    #[test]
    fn reads_of_the_same_data_do_not_depend_on_each_other() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        g.submit(spec("w", &[(x, AccessMode::Write)], 1.0), None);
        let r1 = g.submit(spec("r1", &[(x, AccessMode::Read)], 1.0), None);
        let r2 = g.submit(spec("r2", &[(x, AccessMode::Read)], 1.0), None);
        assert!(!g.dependencies(r2).contains(&r1));
    }

    #[test]
    fn independent_handles_produce_independent_tasks() {
        let mut reg = HandleRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut g = TaskGraph::new();
        g.submit(spec("ta", &[(a, AccessMode::ReadWrite)], 2.0), None);
        let tb = g.submit(spec("tb", &[(b, AccessMode::ReadWrite)], 3.0), None);
        assert!(g.dependencies(tb).is_empty());
        assert_eq!(g.total_cost(), 5.0);
        // Critical path is the longer of the two independent tasks.
        assert_eq!(g.critical_path_cost(), 3.0);
    }

    #[test]
    fn critical_path_of_a_chain_is_the_total_cost() {
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.submit(
                spec(&format!("t{i}"), &[(x, AccessMode::ReadWrite)], 2.0),
                None,
            );
        }
        assert_eq!(g.critical_path_cost(), 10.0);
        assert_eq!(g.total_cost(), 10.0);
        assert_eq!(g.kernel_counts().len(), 5);
    }

    #[test]
    fn cholesky_like_pattern_has_expected_dag_shape() {
        // A 2x2 tiled Cholesky: potrf(0), trsm(1,0), syrk(1,1), potrf(1,1).
        let mut reg = HandleRegistry::new();
        let t00 = reg.register("t00");
        let t10 = reg.register("t10");
        let t11 = reg.register("t11");
        let mut g = TaskGraph::new();
        let potrf0 = g.submit(spec("potrf", &[(t00, AccessMode::ReadWrite)], 1.0), None);
        let trsm = g.submit(
            spec(
                "trsm",
                &[(t00, AccessMode::Read), (t10, AccessMode::ReadWrite)],
                2.0,
            ),
            None,
        );
        let syrk = g.submit(
            spec(
                "syrk",
                &[(t10, AccessMode::Read), (t11, AccessMode::ReadWrite)],
                2.0,
            ),
            None,
        );
        let potrf1 = g.submit(spec("potrf", &[(t11, AccessMode::ReadWrite)], 1.0), None);
        assert_eq!(g.dependencies(trsm), &[potrf0]);
        assert_eq!(g.dependencies(syrk), &[trsm]);
        assert_eq!(g.dependencies(potrf1), &[syrk]);
        assert_eq!(g.critical_path_cost(), 6.0);
        assert_eq!(g.kernel_counts()["potrf"], 2);
    }
}
