//! Data handles: opaque identifiers for the pieces of data tasks touch
//! (matrix tiles, panels, vectors). The runtime only needs identity, not the
//! data itself — exactly like StarPU descriptors from the scheduler's point of
//! view.

/// An opaque identifier of a registered piece of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataHandle(pub(crate) usize);

impl DataHandle {
    /// The numeric id (useful for mapping handles to owners in simulations).
    pub fn id(&self) -> usize {
        self.0
    }
}

/// Registry assigning fresh handles and remembering a debug name and a size
/// (in bytes) for each, so schedulers can model communication volume.
#[derive(Debug, Default)]
pub struct HandleRegistry {
    names: Vec<String>,
    sizes: Vec<usize>,
}

impl HandleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a named piece of data with unknown size.
    pub fn register(&mut self, name: impl Into<String>) -> DataHandle {
        self.register_sized(name, 0)
    }

    /// Register a named piece of data with a size in bytes.
    pub fn register_sized(&mut self, name: impl Into<String>, bytes: usize) -> DataHandle {
        let id = self.names.len();
        self.names.push(name.into());
        self.sizes.push(bytes);
        DataHandle(id)
    }

    /// Number of registered handles.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no handles have been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Debug name of a handle.
    pub fn name(&self, h: DataHandle) -> &str {
        &self.names[h.0]
    }

    /// Registered size in bytes of a handle.
    pub fn size_bytes(&self, h: DataHandle) -> usize {
        self.sizes[h.0]
    }

    /// Sum of the registered sizes of all handles (total data footprint).
    pub fn total_bytes(&self) -> usize {
        self.sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_unique_sequential_ids() {
        let mut r = HandleRegistry::new();
        assert!(r.is_empty());
        let a = r.register("a");
        let b = r.register_sized("b", 1024);
        assert_ne!(a, b);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), "a");
        assert_eq!(r.size_bytes(b), 1024);
        assert_eq!(r.size_bytes(a), 0);
    }

    #[test]
    fn handles_are_usable_as_map_keys() {
        let mut r = HandleRegistry::new();
        let a = r.register("a");
        let b = r.register("b");
        let mut m = std::collections::HashMap::new();
        m.insert(a, 1);
        m.insert(b, 2);
        assert_eq!(m[&a], 1);
        assert_eq!(m[&b], 2);
    }
}
