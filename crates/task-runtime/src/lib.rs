//! # task-runtime — a sequential-task-flow runtime
//!
//! A compact substitute for the StarPU programming model the paper builds on:
//! tasks are submitted in program order, each declaring how it accesses a set
//! of *data handles* (read, write or read-write); the runtime infers the
//! dependency DAG from those declarations (read-after-write, write-after-read,
//! write-after-write) and executes ready tasks concurrently on a worker pool.
//!
//! Consumers in this workspace:
//!
//! * the [`pool`] module provides [`WorkerPool`], a persistent worker pool
//!   whose threads park on a condvar between graph submissions — the engine
//!   behind long-lived solver sessions (`mvn_core::MvnEngine`) and every
//!   one-shot execution,
//! * the [`executor`] (entry point [`run_taskgraph`]) is the one-shot wrapper:
//!   it borrows a throwaway pool per call — it runs the DAG-scheduled tiled
//!   Cholesky in `tile-la`/`tlr` and the fused factor+sweep PMVN pipeline in
//!   `mvn-core` when no session pool is held,
//! * the [`stream`] module provides [`StreamSubmitter`]
//!   ([`WorkerPool::stream`]), the *streaming* submission mode: tasks start
//!   executing the moment they are submitted and the submitter blocks once
//!   `lookahead` tasks are in flight, so peak task storage is
//!   `O(lookahead)` instead of `O(total tasks)` — producers written against
//!   the [`TaskSink`] trait drive either mode with bitwise-identical results,
//! * the [`store`] module provides [`TileStore`], the typed payload storage
//!   task closures borrow tiles from according to their declared accesses,
//! * the [`graph`] alone — task names, access lists and abstract costs — is
//!   consumed by the `distsim` crate to *simulate* distributed-memory
//!   executions of the Cholesky + PMVN DAGs (the paper's Fig. 7 study).

pub mod executor;
pub mod graph;
pub mod handle;
pub mod pool;
pub mod store;
pub mod stream;
pub mod task;

pub use executor::{execute_graph, run_taskgraph, ExecutionTrace, TaskRecord};
pub use graph::{TaskGraph, TaskSink};
pub use handle::{DataHandle, HandleRegistry};
pub use pool::{PoolStats, WorkerPool};
pub use store::{TileRef, TileRefMut, TileStore};
pub use stream::{effective_lookahead, StreamStats, StreamSubmitter};
pub use task::{AccessMode, TaskSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn dependent_tasks_run_in_submission_semantics_order() {
        // A classic read-after-write chain: each task appends its id to a log;
        // the runtime must preserve the chain order even with many workers.
        let mut registry = HandleRegistry::new();
        let data = registry.register("x");
        let mut graph = TaskGraph::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        for step in 0..20 {
            let log = Arc::clone(&log);
            graph.submit(
                TaskSpec::new(format!("step{step}"))
                    .access(data, AccessMode::ReadWrite)
                    .cost(1.0),
                Some(Box::new(move || {
                    log.lock().unwrap().push(step);
                })),
            );
        }
        let trace = execute_graph(&mut graph, 4);
        assert_eq!(trace.records.len(), 20);
        let final_log = log.lock().unwrap().clone();
        assert_eq!(final_log, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_can_overlap_across_workers() {
        let mut registry = HandleRegistry::new();
        let mut graph = TaskGraph::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..8 {
            let h = registry.register(format!("t{i}"));
            let counter = Arc::clone(&counter);
            graph.submit(
                TaskSpec::new(format!("independent{i}"))
                    .access(h, AccessMode::Write)
                    .cost(1.0),
                Some(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                })),
            );
        }
        let trace = execute_graph(&mut graph, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        // With 4 workers and 5 ms tasks, at least two tasks must have executed
        // on different workers.
        let first_worker = trace.records[0].worker;
        assert!(trace.records.iter().any(|r| r.worker != first_worker));
    }
}
