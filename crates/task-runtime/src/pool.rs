//! A persistent worker pool: threads are spawned once and parked on a condvar
//! between graph submissions, so hot call sites that execute many small task
//! graphs (the MLE objective, the CRD bisection, batched MVN solves) do not
//! pay a thread-spawn per graph.
//!
//! [`WorkerPool::run`] executes a [`TaskGraph`] with exactly the same
//! semantics as [`run_taskgraph`](crate::run_taskgraph): every task runs once,
//! all inferred dependencies are honoured, task panics propagate to the
//! caller after the graph has drained, and the numerical result is bitwise
//! identical for any worker count. `run_taskgraph` itself is a thin wrapper
//! that builds a throwaway pool; long-lived sessions (`mvn_core::MvnEngine`)
//! own a pool and reuse it across submissions.
//!
//! # How non-`'static` closures reach `'static` threads
//!
//! Task closures may borrow the submitting scope ([`TaskClosure`]`<'a>`), but
//! pool threads live arbitrarily long. The pool erases the closure lifetime
//! when publishing a job and guarantees soundness with a completion barrier:
//! [`WorkerPool::run`] does not return until every closure has been consumed
//! (executed and dropped), which the per-task completion accounting makes
//! observable — the same technique scoped thread APIs use, with the scope
//! replaced by the duration of one `run` call.

use crate::executor::{run_inline, ExecutionTrace, TaskRecord};
use crate::graph::{TaskClosure, TaskGraph};
use crate::stream::{StreamJob, StreamStats, StreamSubmitter};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Blocking MPMC ready-queue: a mutex-protected deque plus a condvar. Workers
/// sleep when no task is ready and are woken either by a new ready task or by
/// global completion.
struct ReadyQueue {
    deque: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    fn new() -> Self {
        Self {
            deque: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, task: usize) {
        self.deque.lock().unwrap().push_back(task);
        self.cv.notify_one();
    }

    /// Pop a ready task, or `None` once `remaining` hits zero.
    fn pop(&self, remaining: &AtomicUsize) -> Option<usize> {
        let mut q = self.deque.lock().unwrap();
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if remaining.load(Ordering::SeqCst) == 0 {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Wake every sleeping waiter (used on completion). Taking the lock first
    /// closes the check-then-wait race: a waiter holding the lock has either
    /// not yet checked `remaining` (and will see zero) or is already waiting
    /// (and receives the notification).
    fn wake_all(&self) {
        let _guard = self.deque.lock().unwrap();
        self.cv.notify_all();
    }
}

/// One published graph execution: the dependency structure copied out of the
/// graph, the (lifetime-erased) closures, and the completion accounting.
struct Job {
    closures: Vec<Mutex<Option<TaskClosure<'static>>>>,
    pending: Vec<AtomicUsize>,
    remaining: AtomicUsize,
    queue: ReadyQueue,
    /// Completion signal for the submitter. Deliberately separate from the
    /// ready-queue condvar: `ReadyQueue::push` uses `notify_one`, and if the
    /// submitter waited on that same condvar it could swallow a wakeup meant
    /// for a parked worker, leaving a ready task unserved until another
    /// worker happened to loop around (silent parallelism loss).
    done_cv: Condvar,
    dependents: Vec<Vec<usize>>,
    names: Vec<String>,
    records: Mutex<Vec<TaskRecord>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    t0: Instant,
    /// Pool-wide submission id of this graph, carried by the per-task trace
    /// spans so a timeline can attribute tasks to their graph.
    graph_id: u64,
}

/// Releases a finished task's dependents and decrements the job's global
/// counter *on drop*. With the per-closure `catch_unwind` below a closure
/// panic cannot skip this bookkeeping anyway, but keeping it drop-based makes
/// the invariant local: once `remaining` reaches zero, every closure has been
/// consumed and every record pushed.
struct CompletionGuard<'g> {
    job: &'g Job,
    task: usize,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        for &dep in &self.job.dependents[self.task] {
            if self.job.pending[dep].fetch_sub(1, Ordering::SeqCst) == 1 {
                self.job.queue.push(dep);
            }
        }
        if self.job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake the workers still parked in `pop` (they will observe
            // `remaining == 0` and leave) and the submitter in `wait_done`.
            self.job.queue.wake_all();
            let _guard = self.job.queue.deque.lock().unwrap();
            self.job.done_cv.notify_all();
        }
    }
}

impl Job {
    /// Pull the structure and closures out of `graph`, erasing the closure
    /// lifetime.
    ///
    /// # Safety
    ///
    /// The caller must not let the returned job outlive the borrows captured
    /// by the graph's closures without first waiting for [`Job::wait_done`]:
    /// only once `remaining` is zero have all closures been consumed.
    unsafe fn new(graph: &mut TaskGraph<'_>, graph_id: u64) -> Self {
        let n = graph.len();
        let mut closures: Vec<Mutex<Option<TaskClosure<'static>>>> = Vec::with_capacity(n);
        for i in 0..n {
            let c = graph.take_closure(i);
            // SAFETY: lifetime erasure only — the `Send` bound stays in the
            // trait object. `WorkerPool::run` waits for `remaining == 0`
            // before returning, and each closure is consumed (executed and
            // dropped) strictly before its completion guard decrements
            // `remaining`, so no closure (and hence no borrow) survives the
            // `run` call that owns the real lifetime.
            let c: Option<TaskClosure<'static>> = unsafe { std::mem::transmute(c) };
            closures.push(Mutex::new(c));
        }
        let pending: Vec<AtomicUsize> = (0..n)
            .map(|i| AtomicUsize::new(graph.dependencies(i).len()))
            .collect();
        let queue = ReadyQueue::new();
        for i in 0..n {
            if graph.dependencies(i).is_empty() {
                queue.push(i);
            }
        }
        Self {
            closures,
            pending,
            remaining: AtomicUsize::new(n),
            queue,
            done_cv: Condvar::new(),
            dependents: (0..n).map(|i| graph.dependents(i).to_vec()).collect(),
            names: (0..n).map(|i| graph.spec(i).name.clone()).collect(),
            records: Mutex::new(Vec::with_capacity(n)),
            panic: Mutex::new(None),
            t0: Instant::now(),
            graph_id,
        }
    }

    /// Execute ready tasks until the job is drained.
    fn worker_loop(&self, worker_id: usize) {
        while let Some(task) = self.queue.pop(&self.remaining) {
            let _completion = CompletionGuard { job: self, task };
            // Per-task trace span (one relaxed load when tracing is off; the
            // label intern and argument capture only happen when it is on).
            let _span = obs::enabled().then(|| {
                obs::span_with(
                    obs::intern(&self.names[task]),
                    &[("worker", worker_id as u64), ("graph", self.graph_id)],
                )
            });
            let start = self.t0.elapsed().as_secs_f64();
            let closure = self.closures[task].lock().unwrap().take();
            if let Some(f) = closure {
                // Contain the panic so the pool thread survives for later
                // graphs; the first payload is re-raised by `run`.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    let mut slot = self.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let end = self.t0.elapsed().as_secs_f64();
            self.records.lock().unwrap().push(TaskRecord {
                task,
                name: self.names[task].clone(),
                worker: worker_id,
                start,
                end,
            });
        }
    }

    /// Block until every task has completed (closures consumed, records
    /// pushed). Waits on the dedicated completion condvar so it never
    /// competes with parked workers for `ReadyQueue::push` notifications.
    fn wait_done(&self) {
        let mut q = self.queue.deque.lock().unwrap();
        while self.remaining.load(Ordering::SeqCst) != 0 {
            q = self.done_cv.wait(q).unwrap();
        }
    }

    fn take_trace(&self) -> ExecutionTrace {
        let mut records = std::mem::take(&mut *self.records.lock().unwrap());
        records.sort_by(|a, b| a.end.partial_cmp(&b.end).unwrap());
        let makespan = records.last().map(|r| r.end).unwrap_or(0.0);
        ExecutionTrace { records, makespan }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// What the pool's workers are currently serving: a materialized graph
/// execution or a streaming submission session.
enum PoolJob {
    Graph(Arc<Job>),
    Stream(Arc<StreamJob>),
}

struct PoolState {
    /// Monotonic submission counter; workers pick up a job only when the
    /// epoch advances past the last one they served, so a drained job is
    /// never re-entered while the submitter is still collecting its results.
    epoch: u64,
    job: Option<PoolJob>,
    shutdown: bool,
}

/// A snapshot of pool usage counters (see [`WorkerPool::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads owned by the pool (constant for its whole
    /// lifetime — the pool never spawns on demand).
    pub workers: usize,
    /// Task graphs executed so far (including inlined ones).
    pub graphs_run: u64,
    /// Tasks executed so far (materialized and streamed).
    pub tasks_run: u64,
    /// Streaming sessions drained so far (see [`WorkerPool::stream`]).
    pub streams_run: u64,
    /// Maximum in-flight task count observed across all streaming sessions —
    /// bounded by the largest lookahead window any session used (the
    /// `O(lookahead)` peak-task-storage guarantee, asserted by tests).
    pub stream_peak_tasks: usize,
    /// Always-on cumulative per-task-kind timing: `(label, count,
    /// total nanoseconds)`, sorted by label. Covers every execution path
    /// (materialized, inline and streamed) of this pool, so an engine or
    /// serving snapshot can tell factorization kernels from panel sweeps
    /// without enabling tracing.
    pub tasks_by_label: Vec<(String, u64, u64)>,
}

impl PoolStats {
    /// The `(count, total ns)` recorded for task kind `label` so far.
    pub fn label_timing(&self, label: &str) -> Option<(u64, u64)> {
        self.tasks_by_label
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|&(_, c, ns)| (c, ns))
    }
}

/// A persistent pool of worker threads executing [`TaskGraph`]s.
///
/// Workers are spawned once in [`WorkerPool::new`] and parked on a condvar
/// between [`run`](WorkerPool::run) calls; dropping the pool shuts them down
/// and joins them. `run` takes `&self`, so a pool can be shared; concurrent
/// submissions are serialized (one graph executes at a time).
///
/// A pool of one worker spawns no thread at all: every graph runs inline on
/// the submitting thread (submission order is a valid topological order under
/// the sequential-task-flow contract), as do trivially small graphs on any
/// pool — identical to the [`run_taskgraph`](crate::run_taskgraph) shortcut.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// Serializes `run` calls: the pool executes one job at a time.
    submit_lock: Mutex<()>,
    /// The thread currently inside a [`stream`](WorkerPool::stream)
    /// submission closure (holding `submit_lock`), if any. Unlike `run` —
    /// whose graph is fully built before the lock is taken — the stream
    /// closure runs user code *while* the lock is held, so a nested pool
    /// entry from that thread would self-deadlock on the non-reentrant
    /// mutex; `run` and `stream` check this field and execute nested work
    /// inline instead, exactly like re-entrant submission from a worker.
    stream_submitter: Mutex<Option<std::thread::ThreadId>>,
    graphs_run: AtomicU64,
    tasks_run: AtomicU64,
    streams_run: AtomicU64,
    stream_peak_tasks: AtomicUsize,
    /// Cumulative per-task-kind `(count, ns)` across every execution path;
    /// merged once per graph/stream (not per task), so the always-on cost is
    /// one short lock per submission.
    label_times: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers.max(1)` workers. A single-worker pool spawns
    /// no OS thread (graphs run inline on the submitter).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let spawned = if workers == 1 { 0 } else { workers };
        let threads = (0..spawned)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("task-runtime-worker-{worker_id}"))
                    .spawn(move || Self::worker_main(shared, worker_id))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            threads,
            submit_lock: Mutex::new(()),
            stream_submitter: Mutex::new(None),
            graphs_run: AtomicU64::new(0),
            tasks_run: AtomicU64::new(0),
            streams_run: AtomicU64::new(0),
            stream_peak_tasks: AtomicUsize::new(0),
            label_times: Mutex::new(BTreeMap::new()),
        }
    }

    /// Accumulate a drained graph's per-task records into the per-label
    /// timing map: aggregated locally first, so the shared lock is taken once
    /// per graph regardless of task count.
    fn merge_label_records(&self, records: &[TaskRecord]) {
        if records.is_empty() {
            return;
        }
        let mut local: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for r in records {
            let ns = ((r.end - r.start).max(0.0) * 1e9) as u64;
            let e = local.entry(r.name.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += ns;
        }
        let mut times = self.label_times.lock().unwrap();
        for (name, (c, ns)) in local {
            match times.get_mut(name) {
                Some(e) => {
                    e.0 += c;
                    e.1 += ns;
                }
                None => {
                    times.insert(name.to_string(), (c, ns));
                }
            }
        }
    }

    /// Merge a streaming session's per-label `(count, ns)` map.
    fn merge_label_map(&self, by_label: BTreeMap<String, (u64, u64)>) {
        if by_label.is_empty() {
            return;
        }
        let mut times = self.label_times.lock().unwrap();
        for (name, (c, ns)) in by_label {
            let e = times.entry(name).or_insert((0, 0));
            e.0 += c;
            e.1 += ns;
        }
    }

    /// `true` when `thread` cannot take the submission lock without
    /// deadlocking: it is one of this pool's own workers, or it is the
    /// thread currently inside a `stream` submission closure (which holds
    /// the lock). Nested work from such threads executes inline.
    fn must_run_inline(&self, thread: std::thread::ThreadId) -> bool {
        self.threads.iter().any(|t| t.thread().id() == thread)
            || *self.stream_submitter.lock().unwrap() == Some(thread)
    }

    fn worker_main(shared: Arc<Shared>, worker_id: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch > seen_epoch {
                        match st.job.as_ref() {
                            Some(PoolJob::Graph(job)) => {
                                seen_epoch = st.epoch;
                                break PoolJob::Graph(Arc::clone(job));
                            }
                            Some(PoolJob::Stream(job)) => {
                                seen_epoch = st.epoch;
                                break PoolJob::Stream(Arc::clone(job));
                            }
                            None => {}
                        }
                    }
                    st = shared.work_cv.wait(st).unwrap();
                }
            };
            match job {
                PoolJob::Graph(job) => job.worker_loop(worker_id),
                PoolJob::Stream(job) => job.worker_loop(worker_id),
            }
        }
    }

    /// Number of workers the pool executes graphs on (the worker count passed
    /// to [`WorkerPool::new`], floored at one).
    pub fn workers(&self) -> usize {
        self.threads.len().max(1)
    }

    /// Usage counters: worker count, graphs executed, tasks executed. The
    /// worker count never changes after construction, which is what the
    /// pool-reuse tests assert against (no thread growth across submissions).
    pub fn stats(&self) -> PoolStats {
        let tasks_by_label = self
            .label_times
            .lock()
            .unwrap()
            .iter()
            .map(|(name, &(c, ns))| (name.clone(), c, ns))
            .collect();
        PoolStats {
            workers: self.workers(),
            graphs_run: self.graphs_run.load(Ordering::Relaxed),
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            streams_run: self.streams_run.load(Ordering::Relaxed),
            stream_peak_tasks: self.stream_peak_tasks.load(Ordering::Relaxed),
            tasks_by_label,
        }
    }

    /// Execute all tasks of `graph` on the pool, honouring the inferred
    /// dependencies, and return the execution trace. Blocks until the graph
    /// has drained; a task panic is re-raised here after the drain, and the
    /// pool remains usable afterwards.
    ///
    /// Calling `run` from inside one of this pool's own task closures is
    /// supported: the nested graph executes inline on that worker (it cannot
    /// be dispatched to the pool, whose submission slot is held by the outer
    /// graph for the duration of the call).
    ///
    /// The result left in the data handles is bitwise identical to any other
    /// execution of the same graph, for any worker count (see the
    /// [`executor`](crate::executor) module docs).
    pub fn run<'a>(&self, graph: &mut TaskGraph<'a>) -> ExecutionTrace {
        let n = graph.len();
        if n == 0 {
            return ExecutionTrace::default();
        }
        let graph_id = self.graphs_run.fetch_add(1, Ordering::Relaxed) + 1;
        self.tasks_run.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads.is_empty() || n <= 2 {
            let trace = run_inline(graph);
            self.merge_label_records(&trace.records);
            return trace;
        }

        // A task closure cannot submit to the pool that is executing it: the
        // outer `run` holds the submission lock and waits for this closure
        // to finish, so a nested dispatch could never be served (deadlock).
        // The same holds for the thread inside a `stream` submission closure
        // (which holds the submission lock itself). Nested submission is
        // still legitimate — e.g. a pooled optimizer objective whose helper
        // routes through the same engine pool — so instead of failing,
        // execute the nested graph inline on the current thread (submission
        // order is a valid topological order, and the outer job's dependency
        // accounting is untouched).
        if self.must_run_inline(std::thread::current().id()) {
            let trace = run_inline(graph);
            self.merge_label_records(&trace.records);
            return trace;
        }

        let (trace, panic) = {
            let _submission = self.submit_lock.lock().unwrap();
            // SAFETY: `wait_done` below blocks until every closure has been
            // consumed, so no borrow captured by the graph's closures
            // outlives this call; worker threads may briefly keep the (by
            // then closure-free) job alive past it.
            let job = Arc::new(unsafe { Job::new(graph, graph_id) });
            {
                let mut st = self.shared.state.lock().unwrap();
                st.epoch += 1;
                st.job = Some(PoolJob::Graph(Arc::clone(&job)));
                self.shared.work_cv.notify_all();
            }
            job.wait_done();
            self.shared.state.lock().unwrap().job = None;
            // The submission lock is released before re-raising, so a task
            // panic never poisons the pool for later graphs.
            let outcome = (job.take_trace(), job.panic.lock().unwrap().take());
            outcome
        };
        self.merge_label_records(&trace.records);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        trace
    }

    /// Run one *streaming* submission session on the pool: `f` receives a
    /// [`StreamSubmitter`] and submits tasks in program order; each task is
    /// handed to the workers the moment it is submitted, and the submitting
    /// thread blocks while `lookahead` tasks are in flight — peak
    /// residency never exceeds the window
    /// (resolved by [`effective_lookahead`](crate::effective_lookahead) at
    /// the call sites that expose a `0 = default` knob; here the window is
    /// used as passed, floored at one).
    ///
    /// Dependency inference, determinism and panic semantics are identical to
    /// [`run`](WorkerPool::run) on a materialized graph of the same
    /// submission sequence: the data left behind is bitwise identical for
    /// any worker count and any window, a task panic drains the session and
    /// re-raises here, and a panic in `f` itself drains the already-submitted
    /// tasks before resuming. What changes is storage and overlap — peak
    /// resident task state is `O(lookahead)` instead of `O(total tasks)`,
    /// and execution overlaps submission (see the
    /// [`stream`](crate::stream) module docs).
    ///
    /// Task closures may borrow anything that outlives this call (the `'env`
    /// scope), exactly like `std::thread::scope`: `stream` does not return
    /// until every submitted closure has been consumed. On a single-worker
    /// pool — or when called from inside one of this pool's own task
    /// closures — the session runs inline on the submitting thread, each
    /// task executing at its submission point.
    ///
    /// Returns `f`'s result together with the session's [`StreamStats`].
    pub fn stream<'env, R>(
        &self,
        lookahead: usize,
        f: impl FnOnce(&mut StreamSubmitter<'_, 'env>) -> R,
    ) -> (R, StreamStats) {
        let lookahead = lookahead.max(1);
        let me = std::thread::current().id();
        if self.threads.is_empty() || self.must_run_inline(me) {
            // Single-worker pool, or re-entrant submission from a pool
            // worker or from inside another `stream` closure on this pool
            // (either way the submission slot is held by the outer job):
            // run the whole session inline, like `run` does.
            let mut s = StreamSubmitter::inline(lookahead);
            let out = catch_unwind(AssertUnwindSafe(|| f(&mut s)));
            let (stats, by_label, panic) = s.finish();
            self.merge_label_map(by_label);
            self.record_stream(&stats);
            match out {
                Ok(r) => {
                    if let Some(payload) = panic {
                        resume_unwind(payload);
                    }
                    (r, stats)
                }
                Err(payload) => resume_unwind(payload),
            }
        } else {
            let (out, stats, by_label, panic) = {
                let _submission = self.submit_lock.lock().unwrap();
                // Published while the submission closure runs under the
                // lock, so nested pool entry from this thread is routed
                // inline (see `must_run_inline`) instead of deadlocking.
                *self.stream_submitter.lock().unwrap() = Some(me);
                let stream_id = self.streams_run.load(Ordering::Relaxed) + 1;
                let job = Arc::new(StreamJob::new(lookahead, stream_id));
                {
                    let mut st = self.shared.state.lock().unwrap();
                    st.epoch += 1;
                    st.job = Some(PoolJob::Stream(Arc::clone(&job)));
                    self.shared.work_cv.notify_all();
                }
                let mut s = StreamSubmitter::pooled(&job);
                // Drain before inspecting the outcome: even if `f` panicked,
                // already-submitted closures (and the borrows they captured)
                // must be consumed before this frame unwinds.
                let out = catch_unwind(AssertUnwindSafe(|| f(&mut s)));
                let (stats, by_label, panic) = s.finish();
                *self.stream_submitter.lock().unwrap() = None;
                self.shared.state.lock().unwrap().job = None;
                (out, stats, by_label, panic)
            };
            self.merge_label_map(by_label);
            self.record_stream(&stats);
            match out {
                Ok(r) => {
                    if let Some(payload) = panic {
                        resume_unwind(payload);
                    }
                    (r, stats)
                }
                Err(payload) => resume_unwind(payload),
            }
        }
    }

    fn record_stream(&self, stats: &StreamStats) {
        if stats.tasks == 0 {
            return;
        }
        self.streams_run.fetch_add(1, Ordering::Relaxed);
        self.tasks_run.fetch_add(stats.tasks, Ordering::Relaxed);
        self.stream_peak_tasks
            .fetch_max(stats.peak_in_flight, Ordering::Relaxed);
    }

    /// Streaming counterpart of [`run_map`](WorkerPool::run_map): the same
    /// independent write-task per item, submitted through a `lookahead`
    /// window instead of one materialized graph — so at most `lookahead` task
    /// closures exist at any instant while early items are already being
    /// evaluated. Results are position-stable and bitwise identical to
    /// `run_map` for any worker count and window. Returns the per-item
    /// results and the session's [`StreamStats`].
    pub fn stream_map<T, R, C, F>(
        &self,
        name: &str,
        items: &[T],
        cost: C,
        f: F,
        lookahead: usize,
    ) -> (Vec<R>, StreamStats)
    where
        T: Sync,
        R: Send + Sync,
        C: Fn(usize, &T) -> f64,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (handles, results) = map_slots(name, items.len());
        let ((), stats) = self.stream(lookahead, |s| {
            submit_map_tasks(s, name, items, &handles, &results, &cost, &f)
        });
        (collect_map_results(&handles, results), stats)
    }

    /// Evaluate `f` over `items` as one task graph of independent write-tasks
    /// (one task per item, each owning its result slot) and collect the
    /// results in item order.
    ///
    /// This is the "embarrassingly parallel map" shape shared by the MVN
    /// panel sweeps and the Monte-Carlo validation blocks; the helper owns
    /// the handle-registry/slot-store boilerplate so call sites only supply
    /// the per-item closure. `cost(i, item)` feeds the abstract cost model of
    /// the task specs (used for tracing/simulation, not scheduling
    /// correctness). Results are position-stable: `out[i] == f(i, &items[i])`
    /// regardless of worker count or interleaving.
    pub fn run_map<T, R, C, F>(&self, name: &str, items: &[T], cost: C, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        C: Fn(usize, &T) -> f64,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (handles, results) = map_slots(name, items.len());
        {
            let mut graph = TaskGraph::new();
            submit_map_tasks(&mut graph, name, items, &handles, &results, &cost, &f);
            self.run(&mut graph);
        }
        collect_map_results(&handles, results)
    }
}

/// One result slot per item for the `*_map` helpers: a freshly registered
/// handle and an empty `Option<R>` slot each.
fn map_slots<R>(name: &str, len: usize) -> (Vec<crate::DataHandle>, crate::TileStore<Option<R>>) {
    let mut registry = crate::HandleRegistry::new();
    let mut results = crate::TileStore::new();
    let handles = (0..len)
        .map(|i| {
            let h = registry.register(format!("{name}{i}"));
            results.insert(h, None);
            h
        })
        .collect();
    (handles, results)
}

/// The shared submission loop of [`WorkerPool::run_map`] and
/// [`WorkerPool::stream_map`]: one independent write-task per item, each
/// owning its result slot — written once against [`TaskSink`] so the two
/// modes cannot drift apart.
fn submit_map_tasks<'a, S, T, R, C, F>(
    sink: &mut S,
    name: &str,
    items: &'a [T],
    handles: &[crate::DataHandle],
    results: &'a crate::TileStore<Option<R>>,
    cost: &C,
    f: &'a F,
) where
    S: crate::TaskSink<'a> + ?Sized,
    T: Sync,
    R: Send + Sync,
    C: Fn(usize, &T) -> f64,
    F: Fn(usize, &T) -> R + Sync,
{
    use crate::task::{AccessMode, TaskSpec};
    for (i, (item, &h)) in items.iter().zip(handles).enumerate() {
        sink.submit_task(
            TaskSpec::new(name)
                .access(h, AccessMode::Write)
                .cost(cost(i, item)),
            Some(Box::new(move || {
                *results.write(h) = Some(f(i, item));
            })),
        );
    }
}

/// Collect the `*_map` results in item order (every task wrote its slot).
fn collect_map_results<R>(
    handles: &[crate::DataHandle],
    mut results: crate::TileStore<Option<R>>,
) -> Vec<R> {
    handles
        .iter()
        .map(|&h| results.take(h).expect("every map task writes its slot"))
        .collect()
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::{AccessMode, TaskSpec};
    use crate::TileStore;
    use std::sync::atomic::AtomicUsize;

    fn counting_graph<'a>(
        reg: &mut HandleRegistry,
        counter: &'a AtomicUsize,
        tasks: usize,
    ) -> TaskGraph<'a> {
        let mut g = TaskGraph::new();
        for i in 0..tasks {
            let h = reg.register(format!("h{i}"));
            g.submit(
                TaskSpec::new("inc").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        g
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let counter = AtomicUsize::new(0);
        let mut g = counting_graph(&mut reg, &counter, 40);
        let trace = pool.run(&mut g);
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert_eq!(trace.records.len(), 40);
        let mut ids: Vec<usize> = trace.records.iter().map(|r| r.task).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_many_graphs_without_thread_growth() {
        let pool = WorkerPool::new(3);
        let before = pool.stats();
        assert_eq!(before.workers, 3);
        let mut reg = HandleRegistry::new();
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let mut g = counting_graph(&mut reg, &counter, 8);
            pool.run(&mut g);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 400);
        let after = pool.stats();
        assert_eq!(after.workers, 3, "pool must never grow threads");
        assert_eq!(after.graphs_run, before.graphs_run + 50);
        assert_eq!(after.tasks_run, before.tasks_run + 400);
    }

    #[test]
    fn pool_respects_dependency_chains() {
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let value = Mutex::new(0u64);
        let mut g = TaskGraph::new();
        for k in 1..=6u64 {
            let value = &value;
            g.submit(
                TaskSpec::new(format!("w{k}")).access(x, AccessMode::Write),
                Some(Box::new(move || {
                    let mut v = value.lock().unwrap();
                    *v = *v * 10 + k;
                })),
            );
        }
        pool.run(&mut g);
        assert_eq!(*value.lock().unwrap(), 123_456);
    }

    #[test]
    fn single_worker_pool_spawns_no_threads_and_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.stats().workers, 1);
        let mut reg = HandleRegistry::new();
        let counter = AtomicUsize::new(0);
        let mut g = counting_graph(&mut reg, &counter, 5);
        let trace = pool.run(&mut g);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        // Inline execution records everything on worker 0 in submission order.
        assert!(trace.records.iter().all(|r| r.worker == 0));
        let ids: Vec<usize> = trace.records.iter().map(|r| r.task).collect();
        assert_eq!(ids, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_a_panicking_task_and_stays_usable() {
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let done = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        for i in 0..12 {
            let h = reg.register(format!("h{i}"));
            let done = &done;
            g.submit(
                TaskSpec::new("maybe_panic").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&mut g);
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        assert_eq!(done.load(Ordering::SeqCst), 11, "the graph must drain");

        // The pool (and all of its workers) must still be usable.
        let counter = AtomicUsize::new(0);
        let mut g2 = counting_graph(&mut reg, &counter, 16);
        pool.run(&mut g2);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(pool.stats().workers, 4);
    }

    #[test]
    fn closures_may_borrow_the_submitting_scope() {
        // The soundness-critical property: stack-borrowed data is safe
        // because `run` blocks until every closure is consumed.
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let mut store: TileStore<f64> = TileStore::new();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let h = reg.register(format!("s{i}"));
                store.insert(h, i as f64);
                h
            })
            .collect();
        let mut g = TaskGraph::new();
        for &h in &handles {
            let store = &store;
            g.submit(
                TaskSpec::new("double").access(h, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    *store.write(h) *= 2.0;
                })),
            );
        }
        pool.run(&mut g);
        drop(g);
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(store.take(h), 2.0 * i as f64);
        }
    }

    #[test]
    fn run_map_collects_results_in_item_order_on_any_pool() {
        let items: Vec<u64> = (0..40).collect();
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let out = pool.run_map("square", &items, |_, _| 1.0, |i, &x| (i as u64, x * x));
            assert_eq!(out.len(), items.len());
            for (i, &(idx, sq)) in out.iter().enumerate() {
                assert_eq!(idx, i as u64);
                assert_eq!(sq, (i * i) as u64);
            }
        }
    }

    #[test]
    fn reentrant_submission_from_a_pool_worker_runs_inline_instead_of_deadlocking() {
        // A task closure submitting to its own pool must neither hang (the
        // submission lock is held by the outer run) nor fail: the nested
        // graph executes inline on the worker.
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let mut reg = HandleRegistry::new();
        let nested_done = std::sync::Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..4 {
            let h = reg.register(format!("h{i}"));
            let pool = std::sync::Arc::clone(&pool);
            let nested_done = std::sync::Arc::clone(&nested_done);
            g.submit(
                TaskSpec::new("nested").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 2 {
                        // Large enough (> 2 tasks) to miss the small-graph
                        // inline shortcut, so this exercises the
                        // worker-thread detection path.
                        let mut inner = TaskGraph::new();
                        for _ in 0..5 {
                            let nested_done = std::sync::Arc::clone(&nested_done);
                            inner.submit(
                                TaskSpec::new("inner"),
                                Some(Box::new(move || {
                                    nested_done.fetch_add(1, Ordering::SeqCst);
                                })),
                            );
                        }
                        pool.run(&mut inner);
                    }
                })),
            );
        }
        pool.run(&mut g);
        assert_eq!(nested_done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let mut g = TaskGraph::new();
        let trace = pool.run(&mut g);
        assert!(trace.records.is_empty());
        assert_eq!(pool.stats().graphs_run, 0);
    }

    #[test]
    fn per_label_timing_counts_every_execution_path() {
        // The always-on `tasks_by_label` accounting must see materialized,
        // inline-shortcut and streamed tasks alike, with exact counts.
        for workers in [1usize, 3] {
            let pool = WorkerPool::new(workers);
            let mut reg = HandleRegistry::new();
            // Materialized graph: 6 "alpha" + 2 "beta" tasks.
            let mut g = TaskGraph::new();
            for i in 0..8 {
                let h = reg.register(format!("h{i}"));
                let name = if i < 6 { "alpha" } else { "beta" };
                g.submit(
                    TaskSpec::new(name).access(h, AccessMode::Write),
                    Some(Box::new(move || {
                        std::hint::black_box(i);
                    })),
                );
            }
            pool.run(&mut g);
            // Small graph (inline shortcut on any pool): 2 more "beta".
            let mut small = TaskGraph::new();
            for i in 0..2 {
                let h = reg.register(format!("s{i}"));
                small.submit(TaskSpec::new("beta").access(h, AccessMode::Write), None);
            }
            pool.run(&mut small);
            // Streamed: 5 "gamma".
            pool.stream(4, |s| {
                for i in 0..5 {
                    let h = reg.register(format!("g{i}"));
                    s.submit(TaskSpec::new("gamma").access(h, AccessMode::Write), None);
                }
            });
            let stats = pool.stats();
            assert_eq!(
                stats.label_timing("alpha").map(|(c, _)| c),
                Some(6),
                "workers={workers}"
            );
            assert_eq!(stats.label_timing("beta").map(|(c, _)| c), Some(4));
            assert_eq!(stats.label_timing("gamma").map(|(c, _)| c), Some(5));
            assert_eq!(stats.label_timing("delta"), None);
            // Labels come out sorted (deterministic snapshots).
            let labels: Vec<&str> = stats
                .tasks_by_label
                .iter()
                .map(|(l, _, _)| l.as_str())
                .collect();
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            assert_eq!(labels, sorted);
        }
    }
}
