//! Typed payload storage for task graphs: a slot per [`DataHandle`], so task
//! closures can borrow (read) or mutate (write) the tile a handle names while
//! the executor runs them concurrently.
//!
//! The runtime's dependency inference guarantees that at any instant a handle
//! is either being written by exactly one task or read by any number of tasks;
//! the per-slot `RwLock` merely *asserts* that discipline (it is always
//! uncontended in a correct task graph) while keeping the API entirely safe.
//!
//! Several stores of different payload types can share one
//! [`HandleRegistry`](crate::HandleRegistry) — slots are keyed by the handle,
//! not by a private id space — which is what lets the fused Cholesky + PMVN
//! pipeline keep factor tiles and sample-panel states in separate typed stores
//! inside a single task graph.

use crate::handle::DataHandle;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A typed slot store keyed by [`DataHandle`].
#[derive(Debug, Default)]
pub struct TileStore<T> {
    slots: HashMap<DataHandle, RwLock<Option<T>>>,
}

impl<T> TileStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            slots: HashMap::new(),
        }
    }

    /// Move a payload into the slot of `handle` (registering the slot if it
    /// does not exist yet). Requires `&mut self`, so it cannot race with task
    /// execution.
    pub fn insert(&mut self, handle: DataHandle, value: T) {
        self.slots.insert(handle, RwLock::new(Some(value)));
    }

    /// `true` if a payload is stored for `handle`.
    pub fn contains(&self, handle: DataHandle) -> bool {
        self.slots
            .get(&handle)
            .is_some_and(|s| s.read().map(|guard| guard.is_some()).unwrap_or(false))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Shared borrow of the payload of `handle`.
    ///
    /// Panics if the handle has no slot or the slot is empty — both indicate
    /// a bug in the task graph (an access that was not declared or a payload
    /// that was never inserted), not a recoverable condition.
    pub fn read(&self, handle: DataHandle) -> TileRef<'_, T> {
        let slot = self
            .slots
            .get(&handle)
            .unwrap_or_else(|| panic!("TileStore: no slot for handle {}", handle.id()));
        let guard = slot.read().expect("TileStore slot poisoned");
        assert!(
            guard.is_some(),
            "TileStore: slot for handle {} is empty",
            handle.id()
        );
        TileRef { guard }
    }

    /// Exclusive borrow of the payload of `handle` (same panics as [`read`]).
    ///
    /// [`read`]: TileStore::read
    pub fn write(&self, handle: DataHandle) -> TileRefMut<'_, T> {
        let slot = self
            .slots
            .get(&handle)
            .unwrap_or_else(|| panic!("TileStore: no slot for handle {}", handle.id()));
        let guard = slot.write().expect("TileStore slot poisoned");
        assert!(
            guard.is_some(),
            "TileStore: slot for handle {} is empty",
            handle.id()
        );
        TileRefMut { guard }
    }

    /// Move the payload of `handle` out of the store (the slot stays
    /// registered but empty). Requires `&mut self`, so all task borrows have
    /// ended.
    pub fn take(&mut self, handle: DataHandle) -> T {
        self.slots
            .get_mut(&handle)
            .unwrap_or_else(|| panic!("TileStore: no slot for handle {}", handle.id()))
            .get_mut()
            .expect("TileStore slot poisoned")
            .take()
            .unwrap_or_else(|| panic!("TileStore: slot for handle {} is empty", handle.id()))
    }
}

/// Shared borrow of a stored payload.
pub struct TileRef<'a, T> {
    guard: RwLockReadGuard<'a, Option<T>>,
}

impl<T> Deref for TileRef<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("checked on acquisition")
    }
}

/// Exclusive borrow of a stored payload.
pub struct TileRefMut<'a, T> {
    guard: RwLockWriteGuard<'a, Option<T>>,
}

impl<T> Deref for TileRefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("checked on acquisition")
    }
}

impl<T> DerefMut for TileRefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("checked on acquisition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_taskgraph;
    use crate::handle::HandleRegistry;
    use crate::task::{AccessMode, TaskSpec};
    use crate::TaskGraph;

    #[test]
    fn insert_read_write_take_roundtrip() {
        let mut reg = HandleRegistry::new();
        let h = reg.register("x");
        let mut store: TileStore<Vec<f64>> = TileStore::new();
        assert!(store.is_empty());
        store.insert(h, vec![1.0, 2.0]);
        assert!(store.contains(h));
        assert_eq!(store.len(), 1);
        assert_eq!(*store.read(h), vec![1.0, 2.0]);
        store.write(h).push(3.0);
        assert_eq!(store.read(h).len(), 3);
        let v = store.take(h);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert!(!store.contains(h));
    }

    #[test]
    #[should_panic(expected = "no slot")]
    fn reading_an_unregistered_handle_panics() {
        let mut reg = HandleRegistry::new();
        let h = reg.register("x");
        let store: TileStore<u32> = TileStore::new();
        let _ = store.read(h);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn reading_a_taken_slot_panics() {
        let mut reg = HandleRegistry::new();
        let h = reg.register("x");
        let mut store: TileStore<u32> = TileStore::new();
        store.insert(h, 7);
        let _ = store.take(h);
        let _ = store.read(h);
    }

    #[test]
    fn two_typed_stores_share_one_registry() {
        let mut reg = HandleRegistry::new();
        let hv = reg.register("vector");
        let hs = reg.register("scalar");
        let mut vectors: TileStore<Vec<f64>> = TileStore::new();
        let mut scalars: TileStore<f64> = TileStore::new();
        vectors.insert(hv, vec![1.0; 4]);
        scalars.insert(hs, 2.0);
        // Distinct handles from the same registry address distinct stores.
        assert_eq!(vectors.read(hv).len(), 4);
        assert_eq!(*scalars.read(hs), 2.0);
    }

    #[test]
    fn graph_tasks_mutate_store_payloads_through_declared_accesses() {
        // A producer/consumer chain over one slot plus an independent slot,
        // executed on several workers: the store must end up with the exact
        // sequential result.
        let mut reg = HandleRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut store: TileStore<f64> = TileStore::new();
        store.insert(a, 1.0);
        store.insert(b, 100.0);

        let mut graph = TaskGraph::new();
        for _ in 0..10 {
            let store_ref = &store;
            graph.submit(
                TaskSpec::new("double_a").access(a, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    *store_ref.write(a) *= 2.0;
                })),
            );
        }
        {
            let store_ref = &store;
            graph.submit(
                TaskSpec::new("a_into_b")
                    .access(a, AccessMode::Read)
                    .access(b, AccessMode::ReadWrite),
                Some(Box::new(move || {
                    let va = *store_ref.read(a);
                    *store_ref.write(b) += va;
                })),
            );
        }
        run_taskgraph(&mut graph, 4);
        drop(graph);
        assert_eq!(store.take(a), 1024.0);
        assert_eq!(store.take(b), 1124.0);
    }
}
