//! Streaming, lookahead-limited task submission.
//!
//! A materialized [`TaskGraph`](crate::TaskGraph) stores *every* task spec,
//! closure and dependency list of a graph before the first task runs —
//! `O((n/nb)³)` of them for a tiled factorization, which is the memory wall
//! for paper-scale grids. A [`StreamSubmitter`] instead hands each task to
//! the [`WorkerPool`](crate::WorkerPool) the moment it is submitted and
//! *retires* its bookkeeping as soon as it completes; the submitting thread
//! blocks once `lookahead` tasks are in flight (peak residency never exceeds
//! the window). Peak task storage
//! is therefore `O(lookahead)` instead of `O(total tasks)`, and on multicore
//! hosts execution overlaps graph construction.
//!
//! **Dependency inference is unchanged.** Submission goes through the same
//! sequential-task-flow hazard rules as `TaskGraph::submit` (read-after-write,
//! write-after-write, write-after-read on the declared handles); an edge to an
//! already-retired task is trivially satisfied, which is exactly the semantics
//! the materialized executor gives a completed predecessor. Because every
//! closure still performs a fixed computation on the data it declared, the
//! contents of every data handle after a drained stream are **bitwise
//! identical** to executing the same submission sequence through a
//! materialized graph, for any worker count and any lookahead ≥ 1 (see the
//! streaming identity tests here and in `tile-la`, `tlr` and `mvn-core`).
//!
//! Entry point: [`WorkerPool::stream`](crate::WorkerPool::stream), which is a
//! scoped API — the submitter only exists inside the closure passed to
//! `stream`, and `stream` does not return until every submitted task has been
//! consumed, so task closures may borrow the submitting scope just like
//! materialized graphs.

use crate::graph::{HazardTracker, TaskClosure, TaskSink};
use crate::task::TaskSpec;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Per-label `(count, total ns)` accumulated by one streaming session and
/// merged into the pool's always-on timing map when the session drains.
pub(crate) type LabelTimes = BTreeMap<String, (u64, u64)>;

/// Resolve a lookahead-window request into a concrete window size.
///
/// This is the single place defining the meaning of `lookahead == 0`: zero
/// requests the default window of `4 × workers` tasks — enough ready work to
/// keep every worker busy while the submitter refills the window, without
/// materializing a meaningful fraction of the graph (the same heuristic
/// StarPU-style runtimes use for their submission windows). Any non-zero
/// value is used as-is, floored at one.
pub fn effective_lookahead(lookahead: usize, workers: usize) -> usize {
    if lookahead == 0 {
        4 * workers.max(1)
    } else {
        lookahead
    }
}

/// Usage counters of one drained streaming session (returned by
/// [`WorkerPool::stream`](crate::WorkerPool::stream)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Total tasks submitted (and executed) through the stream.
    pub tasks: u64,
    /// Maximum number of tasks resident at once (submitted but not yet
    /// retired). Bounded by [`StreamStats::lookahead`] — this is the
    /// `O(lookahead)` peak-task-storage guarantee the window exists for.
    pub peak_in_flight: usize,
    /// The effective lookahead window of the session.
    pub lookahead: usize,
}

/// Bookkeeping of one in-flight task: its (lifetime-erased) closure until a
/// worker takes it, the number of unfinished predecessors, and the successors
/// to release on completion. Retired (removed from the live map) as soon as
/// the task completes — this is all the storage a streamed task ever has.
struct LiveTask {
    closure: Option<TaskClosure<'static>>,
    pending: usize,
    dependents: Vec<usize>,
    /// Task-kind label (moved out of the spec at submission), for the
    /// always-on per-label timing and the per-task trace spans — the spec
    /// itself is not retained by the stream.
    name: String,
}

struct StreamState {
    /// In-flight tasks by id; `live.len()` is the current window occupancy.
    live: HashMap<usize, LiveTask>,
    /// Ids whose predecessors have all completed, awaiting a worker.
    ready: VecDeque<usize>,
    submitted: u64,
    peak: usize,
    /// Set once the submitting scope has ended; workers exit when the live
    /// map drains afterwards.
    closed: bool,
    /// First task panic, re-raised by `stream` after the drain.
    panic: Option<Box<dyn Any + Send>>,
    /// Per-label `(count, ns)` of retired tasks; updated under the state
    /// lock already held at completion, so it adds no synchronization.
    by_label: LabelTimes,
}

/// One published streaming session: shared between the submitting thread and
/// the pool workers.
pub(crate) struct StreamJob {
    state: Mutex<StreamState>,
    /// Wakes workers: a task became ready, or the session closed.
    work_cv: Condvar,
    /// Wakes the submitter blocked on a full window.
    space_cv: Condvar,
    /// Wakes the submitter waiting for the final drain.
    done_cv: Condvar,
    lookahead: usize,
    /// Pool-wide id of this session, carried by the per-task trace spans.
    stream_id: u64,
}

impl StreamJob {
    pub(crate) fn new(lookahead: usize, stream_id: u64) -> Self {
        Self {
            state: Mutex::new(StreamState {
                live: HashMap::new(),
                ready: VecDeque::new(),
                submitted: 0,
                peak: 0,
                closed: false,
                panic: None,
                by_label: LabelTimes::new(),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            done_cv: Condvar::new(),
            lookahead,
            stream_id,
        }
    }

    /// Worker side: execute ready tasks until the session is closed *and*
    /// drained.
    pub(crate) fn worker_loop(&self, worker_id: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(id) = st.ready.pop_front() {
                let task = st.live.get_mut(&id).expect("ready task must be live");
                let closure = task.closure.take();
                // Per-task trace span: label interned only while tracing is
                // on (the name lives in the live map, which is about to be
                // unlocked).
                let span = obs::enabled().then(|| {
                    obs::span_with(
                        obs::intern(&task.name),
                        &[("worker", worker_id as u64), ("stream", self.stream_id)],
                    )
                });
                drop(st);
                let t0 = Instant::now();
                if let Some(f) = closure {
                    // Contain the panic so the pool thread survives; the
                    // first payload is re-raised by `stream` after the drain.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                        let mut s = self.state.lock().unwrap();
                        if s.panic.is_none() {
                            s.panic = Some(payload);
                        }
                    }
                }
                let dur_ns = t0.elapsed().as_nanos() as u64;
                drop(span);
                st = self.state.lock().unwrap();
                self.complete(id, &mut st, dur_ns);
            } else if st.closed && st.live.is_empty() {
                return;
            } else {
                st = self.work_cv.wait(st).unwrap();
            }
        }
    }

    /// Retire a finished task: release its dependents, free its window slot,
    /// and signal the submitter.
    fn complete(&self, id: usize, st: &mut StreamState, dur_ns: u64) {
        let task = st.live.remove(&id).expect("completed task must be live");
        let e = st.by_label.entry(task.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += dur_ns;
        for dep in task.dependents {
            let t = st
                .live
                .get_mut(&dep)
                .expect("dependents of a live task are live");
            t.pending -= 1;
            if t.pending == 0 {
                st.ready.push_back(dep);
                self.work_cv.notify_one();
            }
        }
        self.space_cv.notify_one();
        if st.closed && st.live.is_empty() {
            // Wake the remaining parked workers (they observe the drained,
            // closed session and leave) and the submitter in `finish`.
            self.work_cv.notify_all();
            self.done_cv.notify_all();
        }
    }
}

/// How a [`StreamSubmitter`] executes: inline on the submitting thread (a
/// single-worker pool, or re-entrant submission from a pool worker), or
/// published to the pool's worker threads.
enum StreamTarget<'p> {
    Inline {
        tasks: u64,
        first_panic: Option<Box<dyn Any + Send>>,
        by_label: LabelTimes,
    },
    Pool(&'p StreamJob),
}

/// The submission handle of one streaming session (see the [module
/// docs](self)); obtained only inside the closure passed to
/// [`WorkerPool::stream`](crate::WorkerPool::stream).
///
/// [`submit`](StreamSubmitter::submit) mirrors `TaskGraph::submit` — same
/// spec, same optional closure, same inferred dependencies — but blocks once
/// the lookahead window is full. The `'env` lifetime plays the role of
/// `std::thread::scope`'s environment lifetime: closures may borrow anything
/// that outlives the `stream` call, and nothing shorter (in particular, no
/// locals of the submission closure itself).
pub struct StreamSubmitter<'p, 'env> {
    target: StreamTarget<'p>,
    lookahead: usize,
    /// The same hazard state (and inference code) the materialized
    /// [`TaskGraph`](crate::TaskGraph) uses, so the two modes cannot drift
    /// apart; the streaming side prunes retired readers on every update to
    /// keep the per-handle metadata bounded by the window.
    hazards: HazardTracker,
    /// Invariance in `'env` (the `std::thread::scope` trick): the borrows
    /// captured by submitted closures must outlive the whole `stream` call,
    /// never a region the compiler shrinks to fit.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'p, 'env> StreamSubmitter<'p, 'env> {
    pub(crate) fn inline(lookahead: usize) -> Self {
        Self {
            target: StreamTarget::Inline {
                tasks: 0,
                first_panic: None,
                by_label: LabelTimes::new(),
            },
            lookahead,
            hazards: HazardTracker::default(),
            _env: PhantomData,
        }
    }

    pub(crate) fn pooled(job: &'p StreamJob) -> Self {
        Self {
            target: StreamTarget::Pool(job),
            lookahead: job.lookahead,
            hazards: HazardTracker::default(),
            _env: PhantomData,
        }
    }

    /// The effective lookahead window of the session.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Submit a task; its dependencies on earlier submissions are inferred
    /// from the declared data accesses exactly as in `TaskGraph::submit`.
    /// Returns the task's submission index.
    ///
    /// Ready tasks start executing on the pool immediately; if `lookahead`
    /// tasks are already in flight this call blocks until one of them
    /// retires.
    pub fn submit(&mut self, spec: TaskSpec, closure: Option<TaskClosure<'env>>) -> usize {
        match &mut self.target {
            StreamTarget::Inline {
                tasks,
                first_panic,
                by_label,
            } => {
                // Submission order is a valid topological order under the
                // sequential-task-flow contract, so the inline stream needs
                // no hazard tracking: run the task now. Panic semantics match
                // the executor's inline path (drain, re-raise the first).
                let id = *tasks as usize;
                *tasks += 1;
                let span = obs::enabled()
                    .then(|| obs::span_with(obs::intern(&spec.name), &[("worker", 0)]));
                let t0 = Instant::now();
                if let Some(f) = closure {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                        first_panic.get_or_insert(payload);
                    }
                }
                let dur_ns = t0.elapsed().as_nanos() as u64;
                drop(span);
                let e = by_label.entry(spec.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += dur_ns;
                id
            }
            StreamTarget::Pool(job) => {
                let mut st = job.state.lock().unwrap();
                while st.live.len() >= job.lookahead {
                    st = job.space_cv.wait(st).unwrap();
                }
                let id = st.submitted as usize;
                st.submitted += 1;

                // Hazard inference (RAW/WAR/WAW) through the exact code the
                // materialized `TaskGraph::submit` runs; edges to
                // already-retired tasks are dropped below (their completion
                // already happened).
                let deps = self.hazards.dependencies(&spec);
                let mut pending = 0usize;
                for &d in &deps {
                    if let Some(t) = st.live.get_mut(&d) {
                        t.dependents.push(id);
                        pending += 1;
                    }
                }

                // SAFETY: lifetime erasure only — the `Send` bound stays in
                // the trait object. `WorkerPool::stream` drains the session
                // (every closure consumed: executed and dropped) before it
                // returns, and the submitter only exists inside that call,
                // so no closure outlives the `'env` borrows it captured.
                let closure: Option<TaskClosure<'static>> =
                    unsafe { std::mem::transmute::<Option<TaskClosure<'env>>, _>(closure) };
                st.live.insert(
                    id,
                    LiveTask {
                        closure,
                        pending,
                        dependents: Vec::new(),
                        // Placeholder until the spec is released by the
                        // hazard recording below; the real label is moved in
                        // before the lock drops, so workers always see it.
                        name: String::new(),
                    },
                );
                st.peak = st.peak.max(st.live.len());
                if pending == 0 {
                    st.ready.push_back(id);
                    job.work_cv.notify_one();
                }
                // Record the accesses while the live set is at hand: retired
                // readers are pruned from the per-handle lists (a WAR edge
                // to a retired task is trivially satisfied), which keeps the
                // submitter-side hazard metadata O(window) per handle even
                // when a handle — e.g. a factor tile swept by every panel —
                // is read by thousands of tasks over the session.
                self.hazards.record(&spec, id, |d| st.live.contains_key(&d));
                st.live
                    .get_mut(&id)
                    .expect("task inserted above is live")
                    .name = spec.name;
                id
            }
        }
    }

    /// Close the session and block until every submitted task has retired.
    /// Returns the session counters, the per-label `(count, ns)` timing map
    /// (merged into the pool's always-on stats), and the first task panic.
    pub(crate) fn finish(self) -> (StreamStats, LabelTimes, Option<Box<dyn Any + Send>>) {
        match self.target {
            StreamTarget::Inline {
                tasks,
                first_panic,
                by_label,
            } => (
                StreamStats {
                    tasks,
                    peak_in_flight: usize::from(tasks > 0),
                    lookahead: self.lookahead,
                },
                by_label,
                first_panic,
            ),
            StreamTarget::Pool(job) => {
                let mut st = job.state.lock().unwrap();
                st.closed = true;
                job.work_cv.notify_all();
                while !st.live.is_empty() {
                    st = job.done_cv.wait(st).unwrap();
                }
                let stats = StreamStats {
                    tasks: st.submitted,
                    peak_in_flight: st.peak,
                    lookahead: job.lookahead,
                };
                (stats, std::mem::take(&mut st.by_label), st.panic.take())
            }
        }
    }
}

impl<'env> TaskSink<'env> for StreamSubmitter<'_, 'env> {
    fn submit_task(&mut self, spec: TaskSpec, closure: Option<TaskClosure<'env>>) -> usize {
        self.submit(spec, closure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleRegistry;
    use crate::task::AccessMode;
    use crate::WorkerPool;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn effective_lookahead_resolves_zero_to_four_per_worker() {
        assert_eq!(effective_lookahead(0, 4), 16);
        assert_eq!(effective_lookahead(0, 0), 4);
        assert_eq!(effective_lookahead(7, 4), 7);
        assert_eq!(effective_lookahead(1, 256), 1);
    }

    #[test]
    fn streamed_waw_chain_applies_in_submission_order_for_any_window() {
        // The WAW hazard test of the materialized executor, through a stream:
        // six writers of one handle must serialize in submission order for
        // every worker count and window size.
        for workers in [1usize, 2, 4] {
            for lookahead in [1usize, 2, 3, 8] {
                let pool = WorkerPool::new(workers);
                let mut reg = HandleRegistry::new();
                let x = reg.register("x");
                let value = StdMutex::new(0u64);
                let ((), stats) = pool.stream(lookahead, |s| {
                    for k in 1..=6u64 {
                        let value = &value;
                        s.submit(
                            TaskSpec::new(format!("w{k}")).access(x, AccessMode::Write),
                            Some(Box::new(move || {
                                let mut v = value.lock().unwrap();
                                *v = *v * 10 + k;
                            })),
                        );
                    }
                });
                assert_eq!(*value.lock().unwrap(), 123_456, "workers={workers}");
                assert_eq!(stats.tasks, 6);
                assert!(
                    stats.peak_in_flight <= lookahead,
                    "workers={workers} lookahead={lookahead}: peak {}",
                    stats.peak_in_flight
                );
            }
        }
    }

    #[test]
    fn war_hazard_readers_complete_before_writer_in_a_stream() {
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let reads_done = AtomicUsize::new(0);
        let seen_at_write = AtomicUsize::new(usize::MAX);
        pool.stream(16, |s| {
            s.submit(
                TaskSpec::new("init").access(x, AccessMode::Write),
                Some(Box::new(|| {})),
            );
            for _ in 0..8 {
                let reads_done = &reads_done;
                s.submit(
                    TaskSpec::new("read").access(x, AccessMode::Read),
                    Some(Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        reads_done.fetch_add(1, Ordering::SeqCst);
                    })),
                );
            }
            let reads_done = &reads_done;
            let seen_at_write = &seen_at_write;
            s.submit(
                TaskSpec::new("write").access(x, AccessMode::Write),
                Some(Box::new(move || {
                    seen_at_write.store(reads_done.load(Ordering::SeqCst), Ordering::SeqCst);
                })),
            );
        });
        assert_eq!(seen_at_write.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn window_bounds_peak_in_flight_with_many_independent_tasks() {
        // 200 independent tasks through a window of 5: a materialized graph
        // would hold all 200 closures at once; the stream must never hold
        // more than 5.
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let counter = AtomicUsize::new(0);
        let ((), stats) = pool.stream(5, |s| {
            for i in 0..200 {
                let h = reg.register(format!("h{i}"));
                let counter = &counter;
                s.submit(
                    TaskSpec::new("inc").access(h, AccessMode::Write),
                    Some(Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })),
                );
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(stats.tasks, 200);
        assert!(stats.peak_in_flight <= 5, "peak {}", stats.peak_in_flight);
        let ps = pool.stats();
        assert_eq!(ps.streams_run, 1);
        assert_eq!(ps.tasks_run, 200);
        assert!(ps.stream_peak_tasks <= 5);
    }

    #[test]
    fn dependency_edges_to_retired_tasks_are_satisfied() {
        // With lookahead 1 every task retires before the next is submitted,
        // so every RAW edge points at a retired task; the chain must still
        // execute in order (trivially) and produce the sequential result.
        let pool = WorkerPool::new(2);
        let mut reg = HandleRegistry::new();
        let x = reg.register("x");
        let log = StdMutex::new(Vec::new());
        let ((), stats) = pool.stream(1, |s| {
            for step in 0..20 {
                let log = &log;
                s.submit(
                    TaskSpec::new(format!("step{step}")).access(x, AccessMode::ReadWrite),
                    Some(Box::new(move || log.lock().unwrap().push(step))),
                );
            }
        });
        assert_eq!(log.lock().unwrap().clone(), (0..20).collect::<Vec<_>>());
        assert_eq!(stats.peak_in_flight, 1);
    }

    #[test]
    fn single_worker_pool_streams_inline() {
        let pool = WorkerPool::new(1);
        let mut reg = HandleRegistry::new();
        let order = StdMutex::new(Vec::new());
        let (ret, stats) = pool.stream(8, |s| {
            for i in 0..5 {
                let h = reg.register(format!("h{i}"));
                let order = &order;
                s.submit(
                    TaskSpec::new("t").access(h, AccessMode::Write),
                    Some(Box::new(move || order.lock().unwrap().push(i))),
                );
            }
            "done"
        });
        assert_eq!(ret, "done");
        assert_eq!(order.lock().unwrap().clone(), vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.tasks, 5);
        assert_eq!(stats.peak_in_flight, 1);
    }

    #[test]
    fn task_panic_drains_the_stream_and_reraises() {
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.stream(4, |s| {
                for i in 0..12 {
                    let h = reg.register(format!("h{i}"));
                    let done = &done;
                    s.submit(
                        TaskSpec::new("maybe_panic").access(h, AccessMode::Write),
                        Some(Box::new(move || {
                            if i == 5 {
                                panic!("task 5 exploded");
                            }
                            done.fetch_add(1, Ordering::SeqCst);
                        })),
                    );
                }
            });
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        assert_eq!(done.load(Ordering::SeqCst), 11, "the stream must drain");

        // The pool (and its workers) must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        let ((), stats) = pool.stream(4, |s| {
            for i in 0..16 {
                let h = reg.register(format!("g{i}"));
                let counter = &counter;
                s.submit(
                    TaskSpec::new("inc").access(h, AccessMode::Write),
                    Some(Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })),
                );
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(stats.tasks, 16);
    }

    #[test]
    fn submitter_panic_drains_submitted_tasks_before_unwinding() {
        // A panic in the submission closure itself must not leave submitted
        // closures (borrowing this frame) alive in the workers.
        let pool = WorkerPool::new(4);
        let mut reg = HandleRegistry::new();
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.stream(8, |s| {
                for i in 0..6 {
                    let h = reg.register(format!("h{i}"));
                    let done = &done;
                    s.submit(
                        TaskSpec::new("inc").access(h, AccessMode::Write),
                        Some(Box::new(move || {
                            done.fetch_add(1, Ordering::SeqCst);
                        })),
                    );
                }
                panic!("submitter exploded");
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 6, "submitted tasks must run");
    }

    #[test]
    fn reentrant_stream_from_a_pool_worker_runs_inline() {
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let mut reg = HandleRegistry::new();
        let nested_done = std::sync::Arc::new(AtomicUsize::new(0));
        let mut g = crate::TaskGraph::new();
        for i in 0..4 {
            let h = reg.register(format!("h{i}"));
            let pool = std::sync::Arc::clone(&pool);
            let nested_done = std::sync::Arc::clone(&nested_done);
            g.submit(
                TaskSpec::new("outer").access(h, AccessMode::Write),
                Some(Box::new(move || {
                    if i == 2 {
                        let nested = std::sync::Arc::clone(&nested_done);
                        pool.stream(4, move |s| {
                            for _ in 0..5 {
                                let nested = std::sync::Arc::clone(&nested);
                                s.submit(
                                    TaskSpec::new("inner"),
                                    Some(Box::new(move || {
                                        nested.fetch_add(1, Ordering::SeqCst);
                                    })),
                                );
                            }
                        });
                    }
                })),
            );
        }
        pool.run(&mut g);
        assert_eq!(nested_done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn nested_pool_entry_from_the_stream_closure_runs_inline_instead_of_deadlocking() {
        // Regression: the stream submission closure runs while the pool's
        // submission lock is held, so a nested run/run_map/stream from the
        // *submitting* thread used to block forever on the non-reentrant
        // lock. It must execute inline instead, like worker re-entrancy.
        let pool = WorkerPool::new(2);
        let mut reg = HandleRegistry::new();
        let outer_done = AtomicUsize::new(0);
        let ((), stats) = pool.stream(4, |s| {
            // Nested materialized map on the same pool.
            let squares = pool.run_map("sq", &[1u64, 2, 3, 4], |_, _| 1.0, |_, &x| x * x);
            assert_eq!(squares, vec![1, 4, 9, 16]);
            // Nested stream on the same pool.
            let (sum, _) = pool.stream(2, |inner| {
                for i in 0..3 {
                    let h = reg.register(format!("inner{i}"));
                    inner.submit(TaskSpec::new("noop").access(h, AccessMode::Write), None);
                }
                42u32
            });
            assert_eq!(sum, 42);
            for i in 0..5 {
                let h = reg.register(format!("outer{i}"));
                let outer_done = &outer_done;
                s.submit(
                    TaskSpec::new("outer").access(h, AccessMode::Write),
                    Some(Box::new(move || {
                        outer_done.fetch_add(1, Ordering::SeqCst);
                    })),
                );
            }
        });
        assert_eq!(outer_done.load(Ordering::SeqCst), 5);
        assert_eq!(stats.tasks, 5);
    }

    #[test]
    fn stream_map_matches_run_map_in_item_order() {
        let items: Vec<u64> = (0..40).collect();
        for workers in [1usize, 2, 4] {
            for lookahead in [1usize, 3, 64] {
                let pool = WorkerPool::new(workers);
                let want = pool.run_map("square", &items, |_, _| 1.0, |i, &x| (i as u64, x * x));
                let (got, stats) = pool.stream_map(
                    "square",
                    &items,
                    |_, _| 1.0,
                    |i, &x| (i as u64, x * x),
                    lookahead,
                );
                assert_eq!(got, want, "workers={workers} lookahead={lookahead}");
                assert!(stats.peak_in_flight <= lookahead.max(1));
            }
        }
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let (r, stats) = pool.stream(4, |_| 7);
        assert_eq!(r, 7);
        assert_eq!(stats.tasks, 0);
        assert_eq!(stats.peak_in_flight, 0);
        assert_eq!(pool.stats().streams_run, 0);
    }
}
