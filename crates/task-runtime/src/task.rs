//! Task descriptions: a name, the data handles the task touches (with access
//! modes) and an abstract cost used by tracing and by the distributed-memory
//! simulator.

use crate::handle::DataHandle;

/// How a task accesses a data handle. The dependency rules are the usual ones:
/// writes serialize against everything, reads only against writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only access.
    Read,
    /// Write-only access (the previous contents are not needed).
    Write,
    /// Read-modify-write access.
    ReadWrite,
}

impl AccessMode {
    /// `true` if the access writes the data.
    pub fn writes(&self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// `true` if the access reads the data.
    pub fn reads(&self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }
}

/// Description of one task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable kernel name (`potrf`, `trsm`, `qmc`, …).
    pub name: String,
    /// The data accesses of the task, in declaration order.
    pub accesses: Vec<(DataHandle, AccessMode)>,
    /// Abstract execution cost (seconds for the simulator, arbitrary units for
    /// tracing). Zero is allowed.
    pub cost: f64,
}

impl TaskSpec {
    /// A new task with no accesses and zero cost.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            accesses: Vec::new(),
            cost: 0.0,
        }
    }

    /// Declare an access (builder style).
    pub fn access(mut self, handle: DataHandle, mode: AccessMode) -> Self {
        self.accesses.push((handle, mode));
        self
    }

    /// Set the abstract cost (builder style).
    pub fn cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Handles written by this task.
    pub fn written_handles(&self) -> impl Iterator<Item = DataHandle> + '_ {
        self.accesses
            .iter()
            .filter(|(_, m)| m.writes())
            .map(|(h, _)| *h)
    }

    /// Handles read by this task.
    pub fn read_handles(&self) -> impl Iterator<Item = DataHandle> + '_ {
        self.accesses
            .iter()
            .filter(|(_, m)| m.reads())
            .map(|(h, _)| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::Write.writes() && !AccessMode::Write.reads());
        assert!(!AccessMode::Read.writes() && AccessMode::Read.reads());
        assert!(AccessMode::ReadWrite.writes() && AccessMode::ReadWrite.reads());
    }

    #[test]
    fn builder_collects_accesses_and_cost() {
        let a = DataHandle(0);
        let b = DataHandle(1);
        let t = TaskSpec::new("gemm")
            .access(a, AccessMode::Read)
            .access(b, AccessMode::ReadWrite)
            .cost(3.5);
        assert_eq!(t.name, "gemm");
        assert_eq!(t.cost, 3.5);
        assert_eq!(t.read_handles().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(t.written_handles().collect::<Vec<_>>(), vec![b]);
    }
}
