//! Parallel tiled Cholesky factorization (the paper's step (a)).
//!
//! The right-looking tiled algorithm factors the symmetric tile matrix in
//! place: for every panel `k` it runs `POTRF` on the diagonal tile, `TRSM`s the
//! tiles below it, and then applies the trailing `SYRK`/`GEMM` updates.
//!
//! Two schedulers execute that task structure:
//!
//! * [`potrf_tiled`] — the default — submits the tasks to the
//!   [`task_runtime`] DAG executor via [`crate::dag`], matching the paper's
//!   StarPU task graph: no barrier between panels, and factor tiles are
//!   individually consumable by downstream task graphs (the fused PMVN
//!   pipeline),
//! * [`potrf_tiled_forkjoin`] — the historical per-panel fork-join loops,
//!   kept as the scheduling baseline for benchmarks and cross-checks. Both
//!   produce bitwise-identical factors.

use crate::dense::DenseMatrix;
use crate::kernels::{gemm_nt, potrf_in_place, syrk_lower, trsm_right_lower_trans};
use crate::sym_tile::SymTileMatrix;
use rayon::prelude::*;

/// Failure modes of the tiled Cholesky factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not (numerically) positive definite; the payload is the
    /// global index of the failing pivot.
    NotPositiveDefinite(usize),
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// In-place parallel tiled Cholesky factorization `Σ = L·Lᵀ`.
///
/// On success the lower tiles of `a` hold `L`. This is a thin wrapper over the
/// DAG-scheduled [`crate::dag::potrf_tiled_dag`]: `min_parallel_tiles` is the
/// historical fork-join knob and is mapped onto a worker count
/// (`usize::MAX` — "never parallel" — runs one worker, anything else uses all
/// cores). The factor is bitwise identical for every worker count.
pub fn potrf_tiled(a: &mut SymTileMatrix, min_parallel_tiles: usize) -> Result<(), CholeskyError> {
    let workers = if min_parallel_tiles == usize::MAX {
        1
    } else {
        0
    };
    crate::dag::potrf_tiled_dag(a, workers)
}

/// In-place tiled Cholesky with the historical per-panel fork-join scheduling
/// (rayon parallel loops with a barrier after each panel). Kept as the
/// scheduling baseline the DAG path is benchmarked and cross-checked against.
pub fn potrf_tiled_forkjoin(
    a: &mut SymTileMatrix,
    min_parallel_tiles: usize,
) -> Result<(), CholeskyError> {
    let nt = a.num_tiles();
    let layout = a.layout();
    for k in 0..nt {
        // POTRF on the diagonal tile.
        {
            let dk = a.tile_mut(k, k);
            potrf_in_place(dk).map_err(|local| {
                CholeskyError::NotPositiveDefinite(layout.tile_start(k) + local)
            })?;
        }

        // Panel: column tiles below the diagonal get multiplied by L_kk^{-T}.
        if k + 1 < nt {
            let lkk = a.tile(k, k).clone();
            let mut panel: Vec<(usize, DenseMatrix)> =
                ((k + 1)..nt).map(|i| (i, a.take_tile(i, k))).collect();
            if panel.len() >= min_parallel_tiles {
                panel
                    .par_iter_mut()
                    .for_each(|(_, tile)| trsm_right_lower_trans(&lkk, tile));
            } else {
                panel
                    .iter_mut()
                    .for_each(|(_, tile)| trsm_right_lower_trans(&lkk, tile));
            }
            for (i, tile) in panel {
                a.put_tile(i, k, tile);
            }

            // Trailing update: tile (i, j) -= L_ik * L_jk^T for k < j <= i.
            let mut updates: Vec<(usize, usize, DenseMatrix)> = Vec::new();
            for i in (k + 1)..nt {
                for j in (k + 1)..=i {
                    updates.push((i, j, a.take_tile(i, j)));
                }
            }
            {
                // Shared read-only borrow of the factored panel column.
                let a_ref: &SymTileMatrix = a;
                let work = |(i, j, tile): &mut (usize, usize, DenseMatrix)| {
                    let lik = a_ref.tile(*i, k);
                    if i == j {
                        syrk_lower(-1.0, lik, 1.0, tile);
                    } else {
                        let ljk = a_ref.tile(*j, k);
                        gemm_nt(-1.0, lik, ljk, 1.0, tile);
                    }
                };
                if updates.len() >= min_parallel_tiles {
                    updates.par_iter_mut().for_each(work);
                } else {
                    updates.iter_mut().for_each(work);
                }
            }
            for (i, j, tile) in updates {
                a.put_tile(i, j, tile);
            }
        }
    }
    Ok(())
}

/// Log-determinant of `Σ` from its Cholesky factor: `2·Σ log L_ii`.
pub fn log_det_from_factor(l: &SymTileMatrix) -> f64 {
    2.0 * l.diagonal().iter().map(|d| d.ln()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn spd_kernel(range: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / range).exp() + if i == j { 1e-3 } else { 0.0 }
        }
    }

    #[test]
    fn tiled_factor_matches_dense_reference() {
        let n = 45;
        let f = spd_kernel(7.0);
        // Dense reference.
        let mut dense = DenseMatrix::from_fn(n, n, &f);
        potrf_in_place(&mut dense).unwrap();
        // Tiled.
        for nb in [5, 8, 16, 45, 64] {
            let mut tiled = SymTileMatrix::from_fn(n, nb, &f);
            potrf_tiled(&mut tiled, 1).unwrap();
            let l = tiled.to_dense_lower();
            assert!(
                max_abs_diff(&l, &dense) < 1e-10,
                "tile size {nb} disagrees with dense reference"
            );
        }
    }

    #[test]
    fn factor_of_identity_is_identity() {
        let n = 20;
        let mut a = SymTileMatrix::from_fn(n, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        potrf_tiled(&mut a, 1).unwrap();
        let l = a.to_dense_lower();
        assert!(max_abs_diff(&l, &DenseMatrix::identity(n)) < 1e-14);
    }

    #[test]
    fn reconstruction_error_is_small_for_larger_problem() {
        let n = 150;
        let f = spd_kernel(15.0);
        let mut a = SymTileMatrix::from_fn(n, 32, &f);
        potrf_tiled(&mut a, 1).unwrap();
        let l = a.to_dense_lower();
        let rec = l.matmul_nt(&l);
        let orig = DenseMatrix::from_fn(n, n, &f);
        assert!(max_abs_diff(&rec, &orig) < 1e-9);
    }

    #[test]
    fn not_positive_definite_reports_global_pivot() {
        // Make the matrix indefinite by a large negative diagonal entry late on.
        let n = 20;
        let mut a = SymTileMatrix::from_fn(n, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        a.set(13, 13, -1.0);
        let err = potrf_tiled(&mut a, 1).unwrap_err();
        assert_eq!(err, CholeskyError::NotPositiveDefinite(13));
        assert!(err.to_string().contains("positive definite"));
    }

    #[test]
    fn log_det_matches_sum_of_log_eigen_for_diagonal_matrix() {
        let n = 12;
        let mut a = SymTileMatrix::from_fn(n, 5, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        potrf_tiled(&mut a, 1).unwrap();
        let want: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
        assert!((log_det_from_factor(&a) - want).abs() < 1e-12);
    }

    #[test]
    fn sequential_and_parallel_paths_agree() {
        let n = 70;
        let f = spd_kernel(9.0);
        let mut a1 = SymTileMatrix::from_fn(n, 16, &f);
        let mut a2 = SymTileMatrix::from_fn(n, 16, &f);
        potrf_tiled(&mut a1, 1).unwrap();
        potrf_tiled(&mut a2, usize::MAX).unwrap(); // force sequential
        assert!(max_abs_diff(&a1.to_dense_lower(), &a2.to_dense_lower()) < 1e-13);
    }
}
