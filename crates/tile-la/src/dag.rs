//! DAG-scheduled tiled Cholesky: the factorization as a sequential-task-flow
//! graph on the `task-runtime` executor (the paper's StarPU programming
//! model), replacing the per-panel fork-join loops.
//!
//! Every lower tile `(i, j)` becomes a [`DataHandle`]; `POTRF`/`TRSM`/`SYRK`/
//! `GEMM` tasks are submitted in program order declaring how they access those
//! handles, and the runtime infers the dependency DAG. Compared to fork-join
//! this removes the global barrier after each panel: the `TRSM`s of panel
//! `k+1` start as soon as *their* inputs are ready, while trailing updates of
//! panel `k` are still in flight, and — crucially for the fused PMVN pipeline
//! in `mvn-core` — consumers outside the factorization can declare read
//! dependencies on individual factor tiles and overlap with it.
//!
//! Every task applies a fixed kernel to fixed tiles in a fixed submission
//! order, so the factor is bitwise identical to the sequential factorization
//! for any worker count.

use crate::cholesky::CholeskyError;
use crate::dense::DenseMatrix;
use crate::kernels::{gemm_nt, potrf_in_place, syrk_lower, trsm_right_lower_trans};
use crate::layout::TileLayout;
use crate::sym_tile::SymTileMatrix;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use task_runtime::{
    effective_lookahead, run_taskgraph, AccessMode, DataHandle, ExecutionTrace, HandleRegistry,
    StreamStats, TaskGraph, TaskSink, TaskSpec, TileStore, WorkerPool,
};

/// Shared failure state of a factorization task graph.
///
/// When a `POTRF` task hits a non-positive pivot it records the global pivot
/// index here; every task checks the flag on entry and becomes a no-op once it
/// is set ("kill the chain"), so the graph drains quickly instead of operating
/// on garbage tiles. Because all tasks that could observe a failed pivot are
/// transitively ordered after the failing `POTRF`, at most one failure is ever
/// recorded and the reported pivot is deterministic.
#[derive(Debug, Default)]
pub struct FactorStatus {
    failed: AtomicBool,
    pivot: AtomicUsize,
}

impl FactorStatus {
    /// A fresh, non-failed status.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a failure at the given global pivot index (first failure wins).
    pub fn fail(&self, pivot: usize) {
        if !self.failed.swap(true, Ordering::SeqCst) {
            self.pivot.store(pivot, Ordering::SeqCst);
        }
    }

    /// `true` once any task has failed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// The failing global pivot index, if any.
    pub fn pivot(&self) -> Option<usize> {
        if self.is_failed() {
            Some(self.pivot.load(Ordering::SeqCst))
        } else {
            None
        }
    }
}

/// Register one data handle per lower tile `(i, j)` (`j ≤ i`) of a symmetric
/// tile matrix; `handles[i][j]` is the handle of tile `(i, j)`.
pub fn register_tile_handles(
    registry: &mut HandleRegistry,
    layout: TileLayout,
) -> Vec<Vec<DataHandle>> {
    let nt = layout.num_tiles();
    let mut handles: Vec<Vec<DataHandle>> = Vec::with_capacity(nt);
    for i in 0..nt {
        let mut row = Vec::with_capacity(i + 1);
        for j in 0..=i {
            let bytes = layout.tile_size(i) * layout.tile_size(j) * std::mem::size_of::<f64>();
            row.push(registry.register_sized(format!("L[{i},{j}]"), bytes));
        }
        handles.push(row);
    }
    handles
}

/// Move the tiles of `a` out into a [`TileStore`] keyed by freshly registered
/// handles, so task closures can access them concurrently. Reverse with
/// [`attach_tiles`].
pub fn detach_tiles(
    a: &mut SymTileMatrix,
    registry: &mut HandleRegistry,
) -> (Vec<Vec<DataHandle>>, TileStore<DenseMatrix>) {
    let layout = a.layout();
    let handles = register_tile_handles(registry, layout);
    let mut store = TileStore::new();
    for (i, row) in handles.iter().enumerate() {
        for (j, &h) in row.iter().enumerate() {
            store.insert(h, a.take_tile(i, j));
        }
    }
    (handles, store)
}

/// Move the tiles of a [`TileStore`] back into `a` (inverse of
/// [`detach_tiles`]; the graph borrowing the store must have been dropped).
pub fn attach_tiles(
    a: &mut SymTileMatrix,
    handles: &[Vec<DataHandle>],
    store: &mut TileStore<DenseMatrix>,
) {
    for (i, row) in handles.iter().enumerate() {
        for (j, &h) in row.iter().enumerate() {
            a.put_tile(i, j, store.take(h));
        }
    }
}

/// Submit the right-looking tiled Cholesky factorization of the tiles behind
/// `handles` into any [`TaskSink`] — a materialized [`TaskGraph`] or a
/// lookahead-limited [`StreamSubmitter`](task_runtime::StreamSubmitter) —
/// declaring per-tile read/write accesses.
///
/// The caller owns the [`TileStore`] holding the tiles and the
/// [`FactorStatus`]; after executing the graph it must check
/// [`FactorStatus::pivot`]. Exposed (rather than folded into
/// [`potrf_tiled_dag`]) so `mvn-core` can submit PMVN sweep tasks into the
/// *same* graph with read dependencies on the factor tiles.
pub fn submit_factor_tasks<'a, S: TaskSink<'a> + ?Sized>(
    graph: &mut S,
    store: &'a TileStore<DenseMatrix>,
    handles: &[Vec<DataHandle>],
    layout: TileLayout,
    status: &'a FactorStatus,
) {
    let nt = layout.num_tiles();
    for k in 0..nt {
        let nbk = layout.tile_size(k) as f64;
        let h_kk = handles[k][k];
        let pivot0 = layout.tile_start(k);
        graph.submit_task(
            TaskSpec::new("potrf")
                .access(h_kk, AccessMode::ReadWrite)
                .cost(nbk * nbk * nbk / 3.0),
            Some(Box::new(move || {
                if status.is_failed() {
                    return;
                }
                let mut d = store.write(h_kk);
                if let Err(local) = potrf_in_place(&mut d) {
                    status.fail(pivot0 + local);
                }
            })),
        );

        for i in (k + 1)..nt {
            let h_ik = handles[i][k];
            let nbi = layout.tile_size(i) as f64;
            graph.submit_task(
                TaskSpec::new("trsm")
                    .access(h_kk, AccessMode::Read)
                    .access(h_ik, AccessMode::ReadWrite)
                    .cost(nbi * nbk * nbk),
                Some(Box::new(move || {
                    if status.is_failed() {
                        return;
                    }
                    let lkk = store.read(h_kk);
                    let mut t = store.write(h_ik);
                    trsm_right_lower_trans(&lkk, &mut t);
                })),
            );
        }

        for i in (k + 1)..nt {
            let h_ik = handles[i][k];
            let nbi = layout.tile_size(i) as f64;
            for j in (k + 1)..=i {
                let h_ij = handles[i][j];
                let nbj = layout.tile_size(j) as f64;
                if i == j {
                    graph.submit_task(
                        TaskSpec::new("syrk")
                            .access(h_ik, AccessMode::Read)
                            .access(h_ij, AccessMode::ReadWrite)
                            .cost(nbi * nbi * nbk),
                        Some(Box::new(move || {
                            if status.is_failed() {
                                return;
                            }
                            let lik = store.read(h_ik);
                            let mut t = store.write(h_ij);
                            syrk_lower(-1.0, &lik, 1.0, &mut t);
                        })),
                    );
                } else {
                    let h_jk = handles[j][k];
                    graph.submit_task(
                        TaskSpec::new("gemm")
                            .access(h_ik, AccessMode::Read)
                            .access(h_jk, AccessMode::Read)
                            .access(h_ij, AccessMode::ReadWrite)
                            .cost(2.0 * nbi * nbj * nbk),
                        Some(Box::new(move || {
                            if status.is_failed() {
                                return;
                            }
                            let lik = store.read(h_ik);
                            let ljk = store.read(h_jk);
                            let mut t = store.write(h_ij);
                            gemm_nt(-1.0, &lik, &ljk, 1.0, &mut t);
                        })),
                    );
                }
            }
        }
    }
}

/// Detach the tiles of `a`, let `exec` factor them (submitting through a
/// materialized graph or a stream, however it likes), re-attach, and report
/// the recorded pivot failure if any. Shared body of [`potrf_tiled_dag`],
/// [`potrf_tiled_pool`] and [`potrf_tiled_stream`].
fn potrf_tiled_with<E>(a: &mut SymTileMatrix, exec: E) -> Result<(), CholeskyError>
where
    E: FnOnce(&TileStore<DenseMatrix>, &[Vec<DataHandle>], TileLayout, &FactorStatus),
{
    let layout = a.layout();
    let mut registry = HandleRegistry::new();
    let (handles, mut store) = detach_tiles(a, &mut registry);
    let status = FactorStatus::new();
    exec(&store, &handles, layout, &status);
    attach_tiles(a, &handles, &mut store);
    match status.pivot() {
        Some(p) => Err(CholeskyError::NotPositiveDefinite(p)),
        None => Ok(()),
    }
}

/// Materialize the factorization graph of the detached tiles and hand it to
/// `run` (a one-shot [`run_taskgraph`] or a persistent pool).
fn run_materialized<R>(
    run: R,
) -> impl FnOnce(&TileStore<DenseMatrix>, &[Vec<DataHandle>], TileLayout, &FactorStatus)
where
    R: for<'g> FnOnce(&mut TaskGraph<'g>) -> ExecutionTrace,
{
    move |store, handles, layout, status| {
        let mut graph = TaskGraph::new();
        submit_factor_tasks(&mut graph, store, handles, layout, status);
        run(&mut graph);
    }
}

/// In-place tiled Cholesky `Σ = L·Lᵀ`, executed as a dependency-inferred task
/// graph on `workers` threads (resolved by [`effective_workers`]).
///
/// The result is bitwise identical for every worker count. Spins up a
/// throwaway thread pool per call; call sites factoring many matrices should
/// hold a [`WorkerPool`] and use [`potrf_tiled_pool`] instead.
pub fn potrf_tiled_dag(a: &mut SymTileMatrix, workers: usize) -> Result<(), CholeskyError> {
    potrf_tiled_with(
        a,
        run_materialized(|g| run_taskgraph(g, effective_workers(workers))),
    )
}

/// In-place tiled Cholesky `Σ = L·Lᵀ` on a caller-owned persistent
/// [`WorkerPool`] (same task graph — and bitwise-identical factor — as
/// [`potrf_tiled_dag`], without the per-call pool setup).
pub fn potrf_tiled_pool(a: &mut SymTileMatrix, pool: &WorkerPool) -> Result<(), CholeskyError> {
    potrf_tiled_with(a, run_materialized(|g| pool.run(g)))
}

/// In-place tiled Cholesky `Σ = L·Lᵀ` with **streaming, lookahead-limited
/// submission**: tasks are handed to the pool as they are submitted and the
/// submitting thread blocks once `lookahead` tasks are in flight
/// (`0` = the default window, see [`effective_lookahead`]), so peak task
/// storage is `O(lookahead)` instead of the `O((n/nb)³)` a materialized graph
/// holds — and on multicore pools execution overlaps submission.
///
/// The factor is bitwise identical to [`potrf_tiled_dag`] /
/// [`potrf_tiled_pool`] for every worker count and window size. On success
/// returns the session's [`StreamStats`] (total tasks, peak in-flight count).
pub fn potrf_tiled_stream(
    a: &mut SymTileMatrix,
    pool: &WorkerPool,
    lookahead: usize,
) -> Result<StreamStats, CholeskyError> {
    let mut stats = None;
    potrf_tiled_with(a, |store, handles, layout, status| {
        let ((), s) = pool.stream(effective_lookahead(lookahead, pool.workers()), |sink| {
            submit_factor_tasks(sink, store, handles, layout, status);
        });
        stats = Some(s);
    })?;
    Ok(stats.expect("the factorization closure always runs"))
}

/// Resolve a worker-count request into a concrete thread count.
///
/// This is the *single* place defining the meaning of `workers == 0`: zero
/// requests "available parallelism", i.e. one worker per core reported by
/// [`std::thread::available_parallelism`] (falling back to one worker when
/// that is unknown). Every worker-count knob in the workspace —
/// `Scheduler::Dag { workers }`, the factorization entry points here and in
/// `tlr`, and `MvnEngine::builder().workers(..)` — funnels through this
/// function; any non-zero value is used as-is.
pub fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::potrf_tiled_forkjoin;
    use crate::norms::max_abs_diff;

    fn spd_kernel(range: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / range).exp() + if i == j { 1e-3 } else { 0.0 }
        }
    }

    #[test]
    fn dag_factor_matches_forkjoin_factor() {
        let n = 60;
        let f = spd_kernel(8.0);
        let mut dag = SymTileMatrix::from_fn(n, 16, &f);
        let mut fj = SymTileMatrix::from_fn(n, 16, &f);
        potrf_tiled_dag(&mut dag, 4).unwrap();
        potrf_tiled_forkjoin(&mut fj, 1).unwrap();
        assert!(max_abs_diff(&dag.to_dense_lower(), &fj.to_dense_lower()) == 0.0);
    }

    #[test]
    fn dag_factor_is_bitwise_deterministic_across_worker_counts() {
        // The satellite requirement: 1, 2 and 8 workers all produce tiles
        // bitwise identical to the sequential reference.
        let n = 75;
        let f = spd_kernel(11.0);
        let mut reference = SymTileMatrix::from_fn(n, 16, &f);
        potrf_tiled_forkjoin(&mut reference, usize::MAX).unwrap(); // sequential
        let ref_dense = reference.to_dense_lower();
        for workers in [1usize, 2, 8] {
            let mut a = SymTileMatrix::from_fn(n, 16, &f);
            potrf_tiled_dag(&mut a, workers).unwrap();
            let got = a.to_dense_lower();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        got.get(i, j).to_bits() == ref_dense.get(i, j).to_bits(),
                        "workers={workers}: tile entry ({i},{j}) differs bitwise"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_factor_matches_one_shot_factor_bitwise() {
        // One persistent pool factoring several matrices must leave exactly
        // the same bits as the throwaway-pool entry point.
        let n = 60;
        let pool = WorkerPool::new(4);
        for range in [3.0, 8.0, 20.0] {
            let f = spd_kernel(range);
            let mut via_pool = SymTileMatrix::from_fn(n, 16, &f);
            let mut one_shot = SymTileMatrix::from_fn(n, 16, &f);
            potrf_tiled_pool(&mut via_pool, &pool).unwrap();
            potrf_tiled_dag(&mut one_shot, 4).unwrap();
            assert!(
                max_abs_diff(&via_pool.to_dense_lower(), &one_shot.to_dense_lower()) == 0.0,
                "range={range}"
            );
        }
        assert_eq!(pool.stats().graphs_run, 3);
    }

    #[test]
    fn stream_factor_matches_materialized_bitwise_and_bounds_the_window() {
        // The tentpole acceptance criterion for the dense factorization:
        // streaming submission leaves bitwise-identical tiles for 1/2/4
        // workers and several lookahead windows, while the peak number of
        // resident tasks stays within the window (vs. the 20 tasks a
        // materialized 4-tile graph holds).
        let n = 75;
        let f = spd_kernel(11.0);
        let mut reference = SymTileMatrix::from_fn(n, 16, &f);
        potrf_tiled_dag(&mut reference, 2).unwrap();
        let ref_dense = reference.to_dense_lower();
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            for lookahead in [1usize, 2, 3, 8, 64] {
                let mut a = SymTileMatrix::from_fn(n, 16, &f);
                let stats = potrf_tiled_stream(&mut a, &pool, lookahead).unwrap();
                assert!(
                    stats.peak_in_flight <= lookahead,
                    "workers={workers} lookahead={lookahead}: peak {}",
                    stats.peak_in_flight
                );
                // 5 tile rows: 5 potrf + 10 trsm + 10 syrk + 10 gemm.
                assert_eq!(stats.tasks, 35);
                let got = a.to_dense_lower();
                for i in 0..n {
                    for j in 0..n {
                        assert!(
                            got.get(i, j).to_bits() == ref_dense.get(i, j).to_bits(),
                            "workers={workers} lookahead={lookahead}: \
                             entry ({i},{j}) differs bitwise"
                        );
                    }
                }
            }
            assert!(pool.stats().stream_peak_tasks <= 64);
        }
    }

    #[test]
    fn stream_factor_default_window_scales_with_workers() {
        let pool = WorkerPool::new(2);
        let n = 60;
        let mut a = SymTileMatrix::from_fn(n, 16, spd_kernel(8.0));
        let stats = potrf_tiled_stream(&mut a, &pool, 0).unwrap();
        assert_eq!(stats.lookahead, 8, "0 resolves to 4 x workers");
        assert!(stats.peak_in_flight <= 8);
    }

    #[test]
    fn stream_factor_reports_pivot_failures() {
        let pool = WorkerPool::new(2);
        let n = 20;
        let mut a = SymTileMatrix::from_fn(n, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        a.set(13, 13, -1.0);
        let err = potrf_tiled_stream(&mut a, &pool, 4).unwrap_err();
        assert_eq!(err, CholeskyError::NotPositiveDefinite(13));
    }

    #[test]
    fn pool_factor_reports_pivot_failures() {
        let pool = WorkerPool::new(2);
        let n = 20;
        let mut a = SymTileMatrix::from_fn(n, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        a.set(13, 13, -1.0);
        let err = potrf_tiled_pool(&mut a, &pool).unwrap_err();
        assert_eq!(err, CholeskyError::NotPositiveDefinite(13));
    }

    #[test]
    fn dag_reports_global_pivot_and_kills_the_chain() {
        let n = 20;
        let mut a = SymTileMatrix::from_fn(n, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        a.set(13, 13, -1.0);
        let err = potrf_tiled_dag(&mut a, 4).unwrap_err();
        assert_eq!(err, CholeskyError::NotPositiveDefinite(13));
    }

    #[test]
    fn factor_status_records_first_failure_only() {
        let s = FactorStatus::new();
        assert!(!s.is_failed());
        assert_eq!(s.pivot(), None);
        s.fail(7);
        s.fail(3);
        assert_eq!(s.pivot(), Some(7));
    }

    #[test]
    fn task_graph_has_expected_kernel_counts() {
        let n = 64;
        let mut a = SymTileMatrix::from_fn(n, 16, spd_kernel(5.0));
        let layout = a.layout();
        let mut registry = HandleRegistry::new();
        let (handles, store) = detach_tiles(&mut a, &mut registry);
        let status = FactorStatus::new();
        let mut graph = TaskGraph::new();
        submit_factor_tasks(&mut graph, &store, &handles, layout, &status);
        let counts = graph.kernel_counts();
        let nt = 4;
        assert_eq!(counts["potrf"], nt);
        assert_eq!(counts["trsm"], nt * (nt - 1) / 2);
        assert_eq!(counts["syrk"], nt * (nt - 1) / 2);
        assert_eq!(counts["gemm"], 4); // sum over k of C(nt-k-1, 2)
    }
}
