//! Column-major dense matrix used for tiles, panels and small reference
//! computations.

/// A dense, column-major, heap-allocated `f64` matrix.
///
/// This is the storage unit for individual tiles of the tiled algorithms as
/// well as for the `n × m` sample panels of the PMVN integrator. It favours
/// clarity and predictable memory layout (column-major, like BLAS/LAPACK) over
/// micro-optimized SIMD kernels; the tiled algorithms built on top provide the
/// coarse-grained parallelism that dominates performance.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Build a matrix from an element function `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Build from a column-major data vector.
    pub fn from_column_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        Self { nrows, ncols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = v;
    }

    /// Mutable element reference.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }

    /// Raw column-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A column as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// A column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct columns as mutable slices (for in-place rotations).
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 != j2 && j1 < self.ncols && j2 < self.ncols);
        let n = self.nrows;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (a, b) = self.data.split_at_mut(hi * n);
        let first = &mut a[lo * n..(lo + 1) * n];
        let second = &mut b[..n];
        if j1 < j2 {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Copy a rectangular block from `src` starting at `(src_i, src_j)` into
    /// this matrix starting at `(dst_i, dst_j)`, with the given block size.
    pub fn copy_block_from(
        &mut self,
        src: &DenseMatrix,
        src_i: usize,
        src_j: usize,
        dst_i: usize,
        dst_j: usize,
        rows: usize,
        cols: usize,
    ) {
        assert!(src_i + rows <= src.nrows && src_j + cols <= src.ncols);
        assert!(dst_i + rows <= self.nrows && dst_j + cols <= self.ncols);
        for j in 0..cols {
            for i in 0..rows {
                self.set(dst_i + i, dst_j + j, src.get(src_i + i, src_j + j));
            }
        }
    }

    /// Extract a rectangular sub-matrix.
    pub fn submatrix(&self, i0: usize, j0: usize, rows: usize, cols: usize) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(rows, cols);
        out.copy_block_from(self, i0, j0, 0, 0, rows, cols);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// `self · other` (reference triple-loop product).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let bkj = other.get(k, j);
                if bkj == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let c_col = c.col_mut(j);
                for i in 0..self.nrows {
                    c_col[i] += a_col[i] * bkj;
                }
            }
        }
        c
    }

    /// `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.ncols, "inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.nrows, other.nrows);
        for k in 0..self.ncols {
            for j in 0..other.nrows {
                let bjk = other.get(j, k);
                if bjk == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let c_col = c.col_mut(j);
                for i in 0..self.nrows {
                    c_col[i] += a_col[i] * bjk;
                }
            }
        }
        c
    }

    /// `selfᵀ · other`.
    pub fn matmul_tn(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.nrows, other.nrows, "inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.ncols, other.ncols);
        for j in 0..other.ncols {
            for i in 0..self.ncols {
                let mut s = 0.0;
                let a_col = self.col(i);
                let b_col = other.col(j);
                for k in 0..self.nrows {
                    s += a_col[k] * b_col[k];
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let col = self.col(j);
            for i in 0..self.nrows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// `self += alpha * other` (element-wise).
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scale all elements by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.col(1), &[1.0, 11.0, 21.0]);
        let id = DenseMatrix::identity(3);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(1, 0), 0.0);
    }

    #[test]
    fn column_major_storage_order() {
        let m = DenseMatrix::from_column_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = DenseMatrix::from_column_major(2, 3, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = DenseMatrix::from_column_major(3, 2, vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0]);
        let c = a.matmul(&b);
        // [[1,2,3],[4,5,6]] * [[7,8],[9,10],[11,12]] = [[58,64],[139,154]]
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transpose() {
        let a = DenseMatrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 * 0.3 - 1.0);
        let b = DenseMatrix::from_fn(5, 3, |i, j| (i * j) as f64 * 0.1 + 0.5);
        let nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(crate::norms::max_abs_diff(&nt, &explicit) < 1e-14);

        let c = DenseMatrix::from_fn(4, 6, |i, j| (i as f64 - j as f64) * 0.2);
        let tn = a.matmul_tn(&c);
        let explicit2 = a.transpose().matmul(&c);
        assert!(crate::norms::max_abs_diff(&tn, &explicit2) < 1e-14);
    }

    #[test]
    fn matvec_matches_matmul_with_single_column() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64);
        let x = vec![1.0, -2.0, 0.5];
        let y = a.matvec(&x);
        let xm = DenseMatrix::from_column_major(3, 1, x);
        let ym = a.matmul(&xm);
        for i in 0..3 {
            assert!((y[i] - ym.get(i, 0)).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(4, 7, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn block_copy_and_submatrix() {
        let a = DenseMatrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let sub = a.submatrix(2, 3, 3, 2);
        assert_eq!(sub.get(0, 0), a.get(2, 3));
        assert_eq!(sub.get(2, 1), a.get(4, 4));
        let mut b = DenseMatrix::zeros(6, 6);
        b.copy_block_from(&a, 0, 0, 3, 3, 3, 3);
        assert_eq!(b.get(3, 3), a.get(0, 0));
        assert_eq!(b.get(5, 5), a.get(2, 2));
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn two_cols_mut_gives_disjoint_slices() {
        let mut a = DenseMatrix::from_fn(3, 4, |i, j| (i + j) as f64);
        {
            let (c1, c3) = a.two_cols_mut(1, 3);
            c1[0] = 100.0;
            c3[2] = -7.0;
        }
        assert_eq!(a.get(0, 1), 100.0);
        assert_eq!(a.get(2, 3), -7.0);
        // Reversed order.
        let (c3, c1) = a.two_cols_mut(3, 1);
        assert_eq!(c3[2], -7.0);
        assert_eq!(c1[0], 100.0);
    }

    #[test]
    fn norms_and_scaling() {
        let mut a = DenseMatrix::from_column_major(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        a.scale(2.0);
        assert_eq!(a.max_abs(), 8.0);
        let b = DenseMatrix::identity(2);
        a.add_scaled(-1.0, &b);
        assert_eq!(a.get(0, 0), 5.0);
        assert!(a.is_finite());
        a.set(0, 0, f64::NAN);
        assert!(!a.is_finite());
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
