//! General matrix–matrix multiply kernels (`C ← α·op(A)·op(B) + β·C`).
//!
//! The kernels are cache-blocked, register-tiled micro-kernels shaped for the
//! tile sizes of this workspace (tens to a few hundred rows/columns, fitting
//! in L1/L2):
//!
//! * `gemm_nn`/`gemm_nt` pack an [`MR`]-row panel of `A` once per row block
//!   (contiguous, `p`-major) and stream it against [`NR`] columns of `B` at a
//!   time, accumulating an `MR × NR` block in registers. Every `A` load is
//!   reused `NR` times and every `B` load `MR` times, and the unrolled
//!   `MR`-lane inner updates are straight-line mul/add code the compiler
//!   autovectorizes.
//! * `gemm_tn` is a dot-product kernel (both operands walk contiguous
//!   columns); it blocks 4 output rows × 2 output columns so eight
//!   independent accumulation chains hide the FP add latency that bounds a
//!   naive single-chain dot product.
//!
//! **Determinism contract.** For every output element the `k`-dimension
//! accumulation runs in strictly increasing `p` order, one term at a time,
//! exactly like the naive triple loop: the accumulator block is *loaded from
//! `C`* (after the `β` scaling), updated in `p` order, and stored back, and
//! no fused-multiply-add or reduction splitting is introduced. Register
//! blocking therefore changes which elements are computed *together*, never
//! the order of the sum within an element — results are independent of the
//! blocking parameters, which is what keeps the PMVN sweep bitwise identical
//! across panel widths and schedulers (see DESIGN.md, "Kernel layout &
//! vectorization").

use crate::dense::DenseMatrix;

/// Rows of the register micro-tile (also the packed-panel height).
pub const MR: usize = 4;
/// Columns of the register micro-tile.
pub const NR: usize = 4;

std::thread_local! {
    /// Reused `A`-panel pack buffer. The PMVN sweep calls `gemm_nn`/`gemm_nt`
    /// once per off-diagonal tile per row block, so a per-call allocation
    /// would sit squarely in the hot loop the chain-major refactor otherwise
    /// made allocation-free; each worker thread owns one buffer instead.
    /// The kernels never nest, so the `RefCell` borrow is always available.
    static APACK: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with a thread-local scratch of at least `len` doubles.
#[inline]
fn with_apack<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    APACK.with(|buf| {
        let mut apack = buf.borrow_mut();
        if apack.len() < len {
            apack.resize(len, 0.0);
        }
        f(&mut apack[..len])
    })
}

/// Pack rows `i0..i0+MR` of the column-major `a` (`m × k`) into a contiguous
/// `p`-major panel: `apack[p*MR + r] = a[(i0 + r) + p*m]`.
#[inline]
fn pack_a_panel(a: &[f64], m: usize, k: usize, i0: usize, apack: &mut [f64]) {
    for p in 0..k {
        let src = &a[p * m + i0..p * m + i0 + MR];
        let dst = &mut apack[p * MR..p * MR + MR];
        dst.copy_from_slice(src);
    }
}

/// The shared `MR × NR` register micro-kernel: `C[i0.., j0..] += Apack · Bq`
/// where `Bq` yields the `NR` scaled `B` entries of step `p`.
///
/// The accumulators are initialized *from `C`* so the per-element sum order
/// is `c, +t_0, +t_1, …` — identical to the naive loop.
#[inline(always)]
fn micro_kernel<B: Fn(usize, usize) -> f64>(
    apack: &[f64],
    k: usize,
    bval: B,
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    for (q, accq) in acc.iter_mut().enumerate() {
        let base = (j0 + q) * ldc + i0;
        accq.copy_from_slice(&c[base..base + MR]);
    }
    for p in 0..k {
        let ap = &apack[p * MR..p * MR + MR];
        for (q, accq) in acc.iter_mut().enumerate() {
            let b = bval(p, q);
            for r in 0..MR {
                accq[r] += ap[r] * b;
            }
        }
    }
    for (q, accq) in acc.iter().enumerate() {
        let base = (j0 + q) * ldc + i0;
        c[base..base + MR].copy_from_slice(accq);
    }
}

/// Scalar edge update for output element `(i, j)` of `C ← C + α·A·op(B)`
/// with the same `p`-sequential accumulation order as the micro-kernel.
#[inline(always)]
fn edge_element<B: Fn(usize) -> f64>(a: &[f64], m: usize, k: usize, i: usize, bval: B) -> f64 {
    let mut acc = 0.0;
    for p in 0..k {
        acc += a[p * m + i] * bval(p);
    }
    acc
}

/// `C ← α·A·B + β·C`.
pub fn gemm_nn(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.ncols(), b.nrows(), "gemm_nn: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm_nn: C row mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm_nn: C col mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    if beta != 1.0 {
        c.scale(beta);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_d = a.data();
    let b_d = b.data();
    let ldc = m;
    let c_d = c.data_mut();
    // b(p, j) = b_d[j*k + p], scaled by alpha at load (like the naive loop).
    let i0 = with_apack(MR * k, |apack| {
        let mut i0 = 0;
        while i0 + MR <= m {
            pack_a_panel(a_d, m, k, i0, apack);
            let mut j0 = 0;
            while j0 + NR <= n {
                micro_kernel(
                    &*apack,
                    k,
                    |p, q| alpha * b_d[(j0 + q) * k + p],
                    c_d,
                    ldc,
                    i0,
                    j0,
                );
                j0 += NR;
            }
            for j in j0..n {
                let bcol = &b_d[j * k..(j + 1) * k];
                for r in 0..MR {
                    let mut acc = c_d[j * ldc + i0 + r];
                    for p in 0..k {
                        acc += apack[p * MR + r] * (alpha * bcol[p]);
                    }
                    c_d[j * ldc + i0 + r] = acc;
                }
            }
            i0 += MR;
        }
        i0
    });
    for i in i0..m {
        for j in 0..n {
            let bcol = &b_d[j * k..(j + 1) * k];
            c_d[j * ldc + i] += edge_element(a_d, m, k, i, |p| alpha * bcol[p]);
        }
    }
}

/// `C ← α·A·Bᵀ + β·C`.
pub fn gemm_nt(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.ncols(), b.ncols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm_nt: C row mismatch");
    assert_eq!(c.ncols(), b.nrows(), "gemm_nt: C col mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.nrows();
    if beta != 1.0 {
        c.scale(beta);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_d = a.data();
    let b_d = b.data();
    let ldc = m;
    let c_d = c.data_mut();
    // bᵀ(p, j) = b(j, p) = b_d[p*n + j]; the NR entries of a micro-step are
    // contiguous in memory.
    let i0 = with_apack(MR * k, |apack| {
        let mut i0 = 0;
        while i0 + MR <= m {
            pack_a_panel(a_d, m, k, i0, apack);
            let mut j0 = 0;
            while j0 + NR <= n {
                micro_kernel(
                    &*apack,
                    k,
                    |p, q| alpha * b_d[p * n + j0 + q],
                    c_d,
                    ldc,
                    i0,
                    j0,
                );
                j0 += NR;
            }
            for j in j0..n {
                for r in 0..MR {
                    let mut acc = c_d[j * ldc + i0 + r];
                    for p in 0..k {
                        acc += apack[p * MR + r] * (alpha * b_d[p * n + j]);
                    }
                    c_d[j * ldc + i0 + r] = acc;
                }
            }
            i0 += MR;
        }
        i0
    });
    for i in i0..m {
        for j in 0..n {
            c_d[j * ldc + i] += edge_element(a_d, m, k, i, |p| alpha * b_d[p * n + j]);
        }
    }
}

/// `C ← α·Aᵀ·B + β·C`.
///
/// Both operands walk contiguous columns, so this is a dot-product kernel:
/// 4 × 2 output elements share their operand loads and accumulate in eight
/// independent chains. Each chain still sums in strictly increasing `p`
/// order with `α` applied once at the end, exactly like the naive loop.
pub fn gemm_tn(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: inner dimension mismatch");
    assert_eq!(c.nrows(), a.ncols(), "gemm_tn: C row mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm_tn: C col mismatch");
    let m = a.ncols();
    let k = a.nrows();
    let n = b.ncols();
    if beta != 1.0 {
        c.scale(beta);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    const TM: usize = 4;
    const TN: usize = 2;
    let a_d = a.data();
    let b_d = b.data();
    let ldc = m;
    let c_d = c.data_mut();
    let acol = |i: usize| &a_d[i * k..(i + 1) * k];
    let bcol = |j: usize| &b_d[j * k..(j + 1) * k];
    let mut j0 = 0;
    while j0 + TN <= n {
        let (b0, b1) = (bcol(j0), bcol(j0 + 1));
        let mut i0 = 0;
        while i0 + TM <= m {
            let (a0, a1, a2, a3) = (acol(i0), acol(i0 + 1), acol(i0 + 2), acol(i0 + 3));
            let mut acc = [[0.0f64; TM]; TN];
            for p in 0..k {
                let av = [a0[p], a1[p], a2[p], a3[p]];
                let bv = [b0[p], b1[p]];
                for q in 0..TN {
                    for r in 0..TM {
                        acc[q][r] += av[r] * bv[q];
                    }
                }
            }
            for q in 0..TN {
                for r in 0..TM {
                    c_d[(j0 + q) * ldc + i0 + r] += alpha * acc[q][r];
                }
            }
            i0 += TM;
        }
        for i in i0..m {
            let ai = acol(i);
            for (q, bq) in [b0, b1].into_iter().enumerate() {
                let mut s = 0.0;
                for p in 0..k {
                    s += ai[p] * bq[p];
                }
                c_d[(j0 + q) * ldc + i] += alpha * s;
            }
        }
        j0 += TN;
    }
    for j in j0..n {
        let bj = bcol(j);
        for i in 0..m {
            let ai = acol(i);
            let mut s = 0.0;
            for p in 0..k {
                s += ai[p] * bj[p];
            }
            c_d[j * ldc + i] += alpha * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_nn_matches_reference() {
        let a = rand_matrix(7, 5, 1);
        let b = rand_matrix(5, 9, 2);
        let mut c = rand_matrix(7, 9, 3);
        let reference = {
            let mut r = c.clone();
            r.scale(0.5);
            r.add_scaled(2.0, &a.matmul(&b));
            r
        };
        gemm_nn(2.0, &a, &b, 0.5, &mut c);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let a = rand_matrix(6, 4, 11);
        let b = rand_matrix(8, 4, 12);
        let mut c = DenseMatrix::zeros(6, 8);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        let reference = a.matmul(&b.transpose());
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let a = rand_matrix(4, 6, 21);
        let b = rand_matrix(4, 5, 22);
        let mut c = DenseMatrix::zeros(6, 5);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        let reference = a.transpose().matmul(&b);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn all_shapes_hit_micro_and_edge_paths() {
        // Sweep shapes around the MR/NR blocking so full blocks, row edges,
        // column edges and sub-block matrices are all exercised against the
        // naive reference products.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 2, 3),
            (4, 4, 4),
            (5, 4, 5),
            (7, 3, 9),
            (8, 8, 8),
            (9, 5, 6),
            (12, 7, 10),
            (16, 16, 16),
            (17, 13, 19),
        ] {
            let a = rand_matrix(m, k, (m * 31 + k) as u64);
            let b = rand_matrix(k, n, (k * 17 + n) as u64);
            let mut c = rand_matrix(m, n, (m + n * 7) as u64);
            let reference = {
                let mut r = c.clone();
                r.scale(0.25);
                r.add_scaled(-1.5, &a.matmul(&b));
                r
            };
            gemm_nn(-1.5, &a, &b, 0.25, &mut c);
            assert!(
                max_abs_diff(&c, &reference) < 1e-12,
                "gemm_nn shape ({m},{k},{n})"
            );

            let bt = rand_matrix(n, k, (n * 13 + k) as u64);
            let mut c2 = rand_matrix(m, n, (m * 3 + n) as u64);
            let reference2 = {
                let mut r = c2.clone();
                r.add_scaled(2.0, &a.matmul(&bt.transpose()));
                r
            };
            gemm_nt(2.0, &a, &bt, 1.0, &mut c2);
            assert!(
                max_abs_diff(&c2, &reference2) < 1e-12,
                "gemm_nt shape ({m},{k},{n})"
            );

            let at = rand_matrix(k, m, (k * 11 + m) as u64);
            let b3 = rand_matrix(k, n, (k * 5 + n + 1) as u64);
            let mut c3 = rand_matrix(m, n, (m + n) as u64);
            let reference3 = {
                let mut r = c3.clone();
                r.add_scaled(0.7, &at.transpose().matmul(&b3));
                r
            };
            gemm_tn(0.7, &at, &b3, 1.0, &mut c3);
            assert!(
                max_abs_diff(&c3, &reference3) < 1e-12,
                "gemm_tn shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_free() {
        // beta = 0 with a C full of garbage must still produce a clean result
        // (this is how update tiles are first initialized).
        let a = rand_matrix(3, 3, 31);
        let b = rand_matrix(3, 3, 32);
        let mut c = DenseMatrix::from_fn(3, 3, |_, _| 1e300);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        let reference = a.matmul(&b);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn accumulation_with_negative_alpha() {
        // The Cholesky trailing update uses alpha = -1, beta = 1.
        let a = rand_matrix(5, 3, 41);
        let b = rand_matrix(5, 3, 42);
        let mut c = rand_matrix(5, 5, 43);
        let reference = {
            let mut r = c.clone();
            r.add_scaled(-1.0, &a.matmul(&b.transpose()));
            r
        };
        gemm_nt(-1.0, &a, &b, 1.0, &mut c);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn blocked_kernels_are_bitwise_invariant_to_output_position() {
        // The determinism contract: an output element's value depends only on
        // its operand row/column, not on where it sits relative to the
        // MR × NR blocking. Compute a product, then recompute with the output
        // embedded at a shifted column offset and compare bits.
        let m = 11;
        let k = 9;
        let n = 10;
        let a = rand_matrix(m, k, 91);
        let b = rand_matrix(k, n, 92);
        let mut c = DenseMatrix::zeros(m, n);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        for shift in 1..NR {
            // Prepend `shift` extra columns to B: the shared columns now sit
            // at different micro-tile positions.
            let b_shift = DenseMatrix::from_fn(k, n + shift, |i, j| {
                if j < shift {
                    0.25 * (i + j) as f64
                } else {
                    b.get(i, j - shift)
                }
            });
            let mut c_shift = DenseMatrix::zeros(m, n + shift);
            gemm_nn(1.0, &a, &b_shift, 0.0, &mut c_shift);
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(
                        c.get(i, j).to_bits(),
                        c_shift.get(i, j + shift).to_bits(),
                        "shift {shift}, element ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(3, 4);
        let b = DenseMatrix::zeros(3, 4);
        let mut c = DenseMatrix::zeros(3, 4);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }
}
