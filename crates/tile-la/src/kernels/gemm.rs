//! General matrix–matrix multiply kernels (`C ← α·op(A)·op(B) + β·C`).
//!
//! The loop orders are chosen for column-major storage: the innermost loop
//! always walks down a column so the compiler can vectorize it. These kernels
//! are called on tiles of a few hundred rows/columns, where this simple
//! structure reaches a large fraction of what a hand-tuned micro-kernel would
//! deliver while staying obviously correct.

use crate::dense::DenseMatrix;

/// `C ← α·A·B + β·C`.
pub fn gemm_nn(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.ncols(), b.nrows(), "gemm_nn: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm_nn: C row mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm_nn: C col mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    if beta != 1.0 {
        c.scale(beta);
    }
    for j in 0..n {
        for p in 0..k {
            let bpj = alpha * b.get(p, j);
            if bpj == 0.0 {
                continue;
            }
            let a_col = a.col(p);
            let c_col = c.col_mut(j);
            for i in 0..m {
                c_col[i] += a_col[i] * bpj;
            }
        }
    }
}

/// `C ← α·A·Bᵀ + β·C`.
pub fn gemm_nt(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.ncols(), b.ncols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm_nt: C row mismatch");
    assert_eq!(c.ncols(), b.nrows(), "gemm_nt: C col mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.nrows();
    if beta != 1.0 {
        c.scale(beta);
    }
    for p in 0..k {
        let a_col = a.col(p);
        for j in 0..n {
            let bjp = alpha * b.get(j, p);
            if bjp == 0.0 {
                continue;
            }
            let c_col = c.col_mut(j);
            for i in 0..m {
                c_col[i] += a_col[i] * bjp;
            }
        }
    }
}

/// `C ← α·Aᵀ·B + β·C`.
pub fn gemm_tn(alpha: f64, a: &DenseMatrix, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: inner dimension mismatch");
    assert_eq!(c.nrows(), a.ncols(), "gemm_tn: C row mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm_tn: C col mismatch");
    let m = a.ncols();
    let k = a.nrows();
    let n = b.ncols();
    if beta != 1.0 {
        c.scale(beta);
    }
    for j in 0..n {
        let b_col = b.col(j);
        for i in 0..m {
            let a_col = a.col(i);
            let mut s = 0.0;
            for p in 0..k {
                s += a_col[p] * b_col[p];
            }
            *c.at_mut(i, j) += alpha * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_nn_matches_reference() {
        let a = rand_matrix(7, 5, 1);
        let b = rand_matrix(5, 9, 2);
        let mut c = rand_matrix(7, 9, 3);
        let reference = {
            let mut r = c.clone();
            r.scale(0.5);
            r.add_scaled(2.0, &a.matmul(&b));
            r
        };
        gemm_nn(2.0, &a, &b, 0.5, &mut c);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let a = rand_matrix(6, 4, 11);
        let b = rand_matrix(8, 4, 12);
        let mut c = DenseMatrix::zeros(6, 8);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        let reference = a.matmul(&b.transpose());
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let a = rand_matrix(4, 6, 21);
        let b = rand_matrix(4, 5, 22);
        let mut c = DenseMatrix::zeros(6, 5);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        let reference = a.transpose().matmul(&b);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn beta_zero_overwrites_nan_free() {
        // beta = 0 with a C full of garbage must still produce a clean result
        // (this is how update tiles are first initialized).
        let a = rand_matrix(3, 3, 31);
        let b = rand_matrix(3, 3, 32);
        let mut c = DenseMatrix::from_fn(3, 3, |_, _| 1e300);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        let reference = a.matmul(&b);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    fn accumulation_with_negative_alpha() {
        // The Cholesky trailing update uses alpha = -1, beta = 1.
        let a = rand_matrix(5, 3, 41);
        let b = rand_matrix(5, 3, 42);
        let mut c = rand_matrix(5, 5, 43);
        let reference = {
            let mut r = c.clone();
            r.add_scaled(-1.0, &a.matmul(&b.transpose()));
            r
        };
        gemm_nt(-1.0, &a, &b, 1.0, &mut c);
        assert!(max_abs_diff(&c, &reference) < 1e-13);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(3, 4);
        let b = DenseMatrix::zeros(3, 4);
        let mut c = DenseMatrix::zeros(3, 4);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }
}
