//! BLAS-3 style tile kernels plus the dense factorizations needed by the tiled
//! and tile-low-rank algorithms.
//!
//! Each kernel operates on whole [`DenseMatrix`](crate::DenseMatrix) tiles. The
//! naming follows BLAS/LAPACK conventions (`gemm`, `trsm`, `syrk`, `potrf`,
//! `geqrf`-style QR, Jacobi `gesvd`) so readers familiar with the paper's
//! Chameleon/HiCMA kernel vocabulary can map one onto the other directly.

pub mod gemm;
pub mod potrf;
pub mod qr;
pub mod svd;
pub mod syrk;
pub mod trsm;

pub use gemm::{gemm_nn, gemm_nt, gemm_tn};
pub use potrf::potrf_in_place;
pub use qr::{qr_factor, QrFactors};
pub use svd::{jacobi_svd, Svd};
pub use syrk::syrk_lower;
pub use trsm::{trsm_left_lower_notrans, trsm_left_lower_trans, trsm_right_lower_trans};
