//! Dense Cholesky factorization of a single tile (`POTRF`).

use crate::dense::DenseMatrix;

/// In-place lower Cholesky factorization of the square tile `a`.
///
/// On success the lower triangle (including the diagonal) of `a` contains `L`
/// with `L·Lᵀ = A`; the strictly-upper triangle is zeroed so the tile can be
/// used directly in `GEMM`s. Returns `Err(k)` with the failing pivot index if
/// the matrix is not (numerically) positive definite.
pub fn potrf_in_place(a: &mut DenseMatrix) -> Result<(), usize> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "potrf: tile must be square");
    for j in 0..n {
        // Diagonal element.
        let mut d = a.get(j, j);
        for k in 0..j {
            let v = a.get(j, k);
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(j);
        }
        let djj = d.sqrt();
        a.set(j, j, djj);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= a.get(i, k) * a.get(j, k);
            }
            a.set(i, j, s / djj);
        }
        // Zero the strictly-upper part of this column's row for cleanliness.
        for i in 0..j {
            a.set(i, j, 0.0);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn spd_matrix(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / 5.0).exp() + if i == j { 0.1 } else { 0.0 }
        })
    }

    #[test]
    fn factor_reconstructs_original() {
        let a0 = spd_matrix(12);
        let mut a = a0.clone();
        potrf_in_place(&mut a).unwrap();
        let rec = a.matmul(&a.transpose());
        assert!(max_abs_diff(&rec, &a0) < 1e-12);
    }

    #[test]
    fn upper_triangle_is_zeroed() {
        let mut a = spd_matrix(6);
        potrf_in_place(&mut a).unwrap();
        for j in 0..6 {
            for i in 0..j {
                assert_eq!(a.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn diagonal_matrix_factors_to_sqrt() {
        let mut a = DenseMatrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        potrf_in_place(&mut a).unwrap();
        for i in 0..4 {
            assert!((a.get(i, i) - ((i + 1) as f64).sqrt()).abs() < 1e-15);
        }
    }

    #[test]
    fn known_3x3_factor() {
        // A = [[4,2,2],[2,5,3],[2,3,6]] has L = [[2,0,0],[1,2,0],[1,1,2]].
        let mut a =
            DenseMatrix::from_column_major(3, 3, vec![4.0, 2.0, 2.0, 2.0, 5.0, 3.0, 2.0, 3.0, 6.0]);
        potrf_in_place(&mut a).unwrap();
        let expect = [
            (0, 0, 2.0),
            (1, 0, 1.0),
            (2, 0, 1.0),
            (1, 1, 2.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
        ];
        for (i, j, v) in expect {
            assert!(
                (a.get(i, j) - v).abs() < 1e-14,
                "L[{i},{j}] = {}",
                a.get(i, j)
            );
        }
    }

    #[test]
    fn non_positive_definite_is_reported() {
        let mut a = DenseMatrix::from_column_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        // Eigenvalues 3 and -1: fails at pivot 1.
        assert_eq!(potrf_in_place(&mut a), Err(1));
        let mut z = DenseMatrix::zeros(3, 3);
        assert_eq!(potrf_in_place(&mut z), Err(0));
    }
}
