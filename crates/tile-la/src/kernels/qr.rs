//! Thin Householder QR factorization, used by the tile-low-rank recompression
//! (rounding of `U·Vᵀ + W·Zᵀ` sums back to a prescribed accuracy).

use crate::dense::DenseMatrix;

/// Thin QR factors: `A = Q·R` with `Q` (m×k) having orthonormal columns and
/// `R` (k×n) upper trapezoidal, where `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthonormal factor, `m × min(m,n)`.
    pub q: DenseMatrix,
    /// Upper-trapezoidal factor, `min(m,n) × n`.
    pub r: DenseMatrix,
}

/// Compute the thin Householder QR factorization of `a`.
pub fn qr_factor(a: &DenseMatrix) -> QrFactors {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let mut work = a.clone();
    // Householder vectors (stored dense per column) and their beta scalars.
    let mut reflectors: Vec<(Vec<f64>, f64)> = Vec::with_capacity(k);

    for j in 0..k {
        // Norm of the column below (and including) the diagonal.
        let mut normx = 0.0;
        for i in j..m {
            let v = work.get(i, j);
            normx += v * v;
        }
        let normx = normx.sqrt();
        if normx == 0.0 {
            reflectors.push((vec![0.0; m - j], 0.0));
            continue;
        }
        let x0 = work.get(j, j);
        let alpha = if x0 >= 0.0 { -normx } else { normx };
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = work.get(i, j);
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        let beta = if vnorm2 > 0.0 { 2.0 / vnorm2 } else { 0.0 };
        // Apply the reflector H = I - beta v v^T to the trailing columns.
        for c in j..n {
            let mut dot = 0.0;
            for (i, vi) in v.iter().enumerate() {
                dot += vi * work.get(j + i, c);
            }
            let f = beta * dot;
            if f != 0.0 {
                for (i, vi) in v.iter().enumerate() {
                    *work.at_mut(j + i, c) -= f * vi;
                }
            }
        }
        reflectors.push((v, beta));
    }

    // Extract R (k x n upper trapezoidal).
    let mut r = DenseMatrix::zeros(k, n);
    for j in 0..n {
        for i in 0..k.min(j + 1) {
            r.set(i, j, work.get(i, j));
        }
    }

    // Accumulate Q = H_0 H_1 ... H_{k-1} * I_thin by applying reflectors in reverse.
    let mut q = DenseMatrix::zeros(m, k);
    for i in 0..k {
        q.set(i, i, 1.0);
    }
    for j in (0..k).rev() {
        let (v, beta) = &reflectors[j];
        if *beta == 0.0 {
            continue;
        }
        for c in 0..k {
            let mut dot = 0.0;
            for (i, vi) in v.iter().enumerate() {
                dot += vi * q.get(j + i, c);
            }
            let f = beta * dot;
            if f != 0.0 {
                for (i, vi) in v.iter().enumerate() {
                    *q.at_mut(j + i, c) -= f * vi;
                }
            }
        }
    }

    QrFactors { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = rand_matrix(12, 5, 3);
        let QrFactors { q, r } = qr_factor(&a);
        assert_eq!(q.nrows(), 12);
        assert_eq!(q.ncols(), 5);
        assert_eq!(r.nrows(), 5);
        assert_eq!(r.ncols(), 5);
        let rec = q.matmul(&r);
        assert!(max_abs_diff(&rec, &a) < 1e-12);
    }

    #[test]
    fn qr_reconstructs_wide_matrix() {
        let a = rand_matrix(4, 9, 5);
        let QrFactors { q, r } = qr_factor(&a);
        assert_eq!(q.ncols(), 4);
        assert_eq!(r.nrows(), 4);
        assert_eq!(r.ncols(), 9);
        let rec = q.matmul(&r);
        assert!(max_abs_diff(&rec, &a) < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = rand_matrix(10, 6, 7);
        let QrFactors { q, .. } = qr_factor(&a);
        let qtq = q.matmul_tn(&q);
        let id = DenseMatrix::identity(6);
        assert!(max_abs_diff(&qtq, &id) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = rand_matrix(8, 8, 9);
        let QrFactors { r, .. } = qr_factor(&a);
        for j in 0..8 {
            for i in (j + 1)..8 {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rank_deficient_matrix_still_reconstructs() {
        // Two identical columns.
        let base = rand_matrix(6, 1, 11);
        let a = DenseMatrix::from_fn(6, 3, |i, j| {
            if j == 2 {
                base.get(i, 0) * 2.0
            } else {
                base.get(i, 0)
            }
        });
        let QrFactors { q, r } = qr_factor(&a);
        let rec = q.matmul(&r);
        assert!(max_abs_diff(&rec, &a) < 1e-12);
    }

    #[test]
    fn zero_matrix_handled() {
        let a = DenseMatrix::zeros(5, 3);
        let QrFactors { q, r } = qr_factor(&a);
        let rec = q.matmul(&r);
        assert!(max_abs_diff(&rec, &a) < 1e-14);
    }
}
