//! One-sided Jacobi singular value decomposition.
//!
//! The TLR compression needs the SVD of individual tiles (a few hundred rows
//! and columns) with enough accuracy to pick the numerical rank at tolerances
//! down to ~1e-9. One-sided Jacobi is simple, unconditionally stable and
//! computes small singular values to high relative accuracy, which is exactly
//! what rank truncation needs; its O(n³) cost per sweep is irrelevant at tile
//! scale.

use crate::dense::DenseMatrix;

/// A (thin) singular value decomposition `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` with `k = min(m, n)`.
    pub u: DenseMatrix,
    /// Singular values in non-increasing order, length `k`.
    pub s: Vec<f64>,
    /// Transposed right singular vectors, `k × n`.
    pub vt: DenseMatrix,
}

impl Svd {
    /// Number of singular values ≥ `threshold`.
    pub fn rank_at(&self, threshold: f64) -> usize {
        self.s.iter().take_while(|&&x| x > threshold).count()
    }

    /// Reconstruct the (possibly truncated to `rank`) matrix `U·S·Vᵀ`.
    pub fn reconstruct(&self, rank: usize) -> DenseMatrix {
        let k = rank.min(self.s.len());
        let m = self.u.nrows();
        let n = self.vt.ncols();
        let mut out = DenseMatrix::zeros(m, n);
        for r in 0..k {
            let sr = self.s[r];
            for j in 0..n {
                let vrj = self.vt.get(r, j) * sr;
                if vrj == 0.0 {
                    continue;
                }
                let u_col = self.u.col(r);
                let o_col = out.col_mut(j);
                for i in 0..m {
                    o_col[i] += u_col[i] * vrj;
                }
            }
        }
        out
    }
}

/// Compute the thin SVD of `a` by one-sided Jacobi rotations.
///
/// Convergence is declared when a full sweep performs no rotation with
/// off-diagonal weight above `1e-14` relative to the column norms, or after 60
/// sweeps (which is never reached in practice for tile-sized inputs).
pub fn jacobi_svd(a: &DenseMatrix) -> Svd {
    // Work on the tall orientation so the rotations act on long columns.
    let transposed = a.nrows() < a.ncols();
    let mut work = if transposed { a.transpose() } else { a.clone() };
    let m = work.nrows();
    let n = work.ncols();
    let mut v = DenseMatrix::identity(n);

    const MAX_SWEEPS: usize = 60;
    const TOL: f64 = 1e-14;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                {
                    let cp = work.col(p);
                    let cq = work.col(q);
                    for i in 0..m {
                        app += cp[i] * cp[i];
                        aqq += cq[i] * cq[i];
                        apq += cp[i] * cq[i];
                    }
                }
                if apq.abs() <= TOL * (app * aqq).sqrt() || app == 0.0 || aqq == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of the working matrix and of V.
                {
                    let (cp, cq) = work.two_cols_mut(p, q);
                    for i in 0..m {
                        let xp = cp[i];
                        let xq = cq[i];
                        cp[i] = c * xp - s * xq;
                        cq[i] = s * xp + c * xq;
                    }
                }
                {
                    let (vp, vq) = v.two_cols_mut(p, q);
                    for i in 0..n {
                        let xp = vp[i];
                        let xq = vq[i];
                        vp[i] = c * xp - s * xq;
                        vq[i] = s * xp + c * xq;
                    }
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; U columns are the normalized columns.
    let k = n.min(m);
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = work.col(j).iter().map(|x| x * x).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = DenseMatrix::zeros(m, k);
    let mut s = vec![0.0; k];
    let mut vmat = DenseMatrix::zeros(n, k);
    for (r, &(norm, j)) in sv.iter().take(k).enumerate() {
        s[r] = norm;
        if norm > 0.0 {
            let src = work.col(j);
            let dst = u.col_mut(r);
            for i in 0..m {
                dst[i] = src[i] / norm;
            }
        }
        let vsrc = v.col(j);
        let vdst = vmat.col_mut(r);
        vdst.copy_from_slice(vsrc);
    }

    if transposed {
        // a = (work)^T = (U S V^T)^T = V S U^T: swap roles.
        Svd {
            u: vmat,
            s,
            vt: u.transpose(),
        }
    } else {
        Svd {
            u,
            s,
            vt: vmat.transpose(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn svd_reconstructs_tall_and_wide_matrices() {
        for (m, n, seed) in [(10, 6, 1), (6, 10, 2), (8, 8, 3)] {
            let a = rand_matrix(m, n, seed);
            let svd = jacobi_svd(&a);
            let rec = svd.reconstruct(svd.s.len());
            assert!(
                max_abs_diff(&rec, &a) < 1e-11,
                "reconstruction failed for {m}x{n}"
            );
        }
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = rand_matrix(9, 7, 5);
        let svd = jacobi_svd(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn orthonormal_factors() {
        let a = rand_matrix(12, 5, 9);
        let svd = jacobi_svd(&a);
        let utu = svd.u.matmul_tn(&svd.u);
        assert!(max_abs_diff(&utu, &DenseMatrix::identity(5)) < 1e-11);
        let vvt = svd.vt.matmul_nt(&svd.vt);
        assert!(max_abs_diff(&vvt, &DenseMatrix::identity(5)) < 1e-11);
    }

    #[test]
    fn diagonal_matrix_has_its_diagonal_as_singular_values() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| if i == j { (4 - i) as f64 } else { 0.0 });
        let svd = jacobi_svd(&a);
        for (i, &s) in svd.s.iter().enumerate() {
            assert!((s - (4 - i) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn known_rank_one_matrix() {
        // a = u v^T with |u| = 2, |v| = 3 => single singular value 6.
        let u = [1.0, 1.0, 1.0, 1.0];
        let v = [3.0f64.sqrt(), 3.0f64.sqrt(), 3.0f64.sqrt()];
        let a = DenseMatrix::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 6.0).abs() < 1e-10);
        for &s in &svd.s[1..] {
            assert!(s < 1e-10);
        }
        assert_eq!(svd.rank_at(1e-8), 1);
        let rec = svd.reconstruct(1);
        assert!(max_abs_diff(&rec, &a) < 1e-10);
    }

    #[test]
    fn rapidly_decaying_spectrum_truncation_error_bounded_by_next_singular_value() {
        // Smooth kernel matrix: exp(-|i-j|/20) has rapidly decaying singular values.
        let n = 24;
        let a = DenseMatrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64).abs()) / 20.0).exp());
        let svd = jacobi_svd(&a);
        for rank in [1, 3, 6, 10] {
            let rec = svd.reconstruct(rank);
            let mut diff = rec.clone();
            diff.add_scaled(-1.0, &a);
            let err = diff.frobenius_norm();
            let tail: f64 = svd.s[rank..].iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                err <= tail * (1.0 + 1e-8) + 1e-12,
                "rank {rank}: err {err} > tail bound {tail}"
            );
        }
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(5, 4);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert_eq!(svd.rank_at(0.0), 0);
    }
}
