//! Symmetric rank-k update: `C ← C − A·Aᵀ` on the lower triangle (the trailing
//! diagonal-tile update of the right-looking Cholesky).

use crate::dense::DenseMatrix;

/// `C ← β·C + α·A·Aᵀ`, updating only the lower triangle of the square tile `C`
/// (the strictly-upper part is left untouched).
pub fn syrk_lower(alpha: f64, a: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "syrk: C must be square");
    assert_eq!(a.nrows(), n, "syrk: A row count must match C");
    let k = a.ncols();
    if beta != 1.0 {
        for j in 0..n {
            for i in j..n {
                *c.at_mut(i, j) *= beta;
            }
        }
    }
    for p in 0..k {
        let a_col = a.col(p);
        for j in 0..n {
            let ajp = alpha * a_col[j];
            if ajp == 0.0 {
                continue;
            }
            for i in j..n {
                *c.at_mut(i, j) += a_col[i] * ajp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn lower_of(m: &DenseMatrix) -> DenseMatrix {
        DenseMatrix::from_fn(
            m.nrows(),
            m.ncols(),
            |i, j| if i >= j { m.get(i, j) } else { 0.0 },
        )
    }

    #[test]
    fn syrk_matches_reference_on_lower_triangle() {
        let a = rand_matrix(6, 4, 7);
        let c0 = rand_matrix(6, 6, 8);
        let mut c = c0.clone();
        syrk_lower(-1.0, &a, 1.0, &mut c);
        let mut reference = c0.clone();
        reference.add_scaled(-1.0, &a.matmul(&a.transpose()));
        assert!(max_abs_diff(&lower_of(&c), &lower_of(&reference)) < 1e-13);
    }

    #[test]
    fn strictly_upper_triangle_is_untouched() {
        let a = rand_matrix(5, 3, 17);
        let c0 = rand_matrix(5, 5, 18);
        let mut c = c0.clone();
        syrk_lower(1.0, &a, 0.5, &mut c);
        for j in 0..5 {
            for i in 0..j {
                assert_eq!(
                    c.get(i, j),
                    c0.get(i, j),
                    "upper element ({i},{j}) modified"
                );
            }
        }
    }

    #[test]
    fn result_is_negative_semidefinite_update() {
        // C = 0, alpha=-1: diagonal of C must become non-positive.
        let a = rand_matrix(4, 4, 27);
        let mut c = DenseMatrix::zeros(4, 4);
        syrk_lower(-1.0, &a, 0.0, &mut c);
        for i in 0..4 {
            assert!(c.get(i, i) <= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn non_square_c_panics() {
        let a = DenseMatrix::zeros(3, 2);
        let mut c = DenseMatrix::zeros(3, 4);
        syrk_lower(1.0, &a, 1.0, &mut c);
    }
}
