//! Triangular solve kernels with a lower-triangular coefficient tile.
//!
//! Only the variants actually used by the tiled Cholesky, the TLR Cholesky and
//! the tiled forward/backward substitutions are provided:
//!
//! * [`trsm_right_lower_trans`] — `B ← B·L⁻ᵀ` (panel update of the Cholesky),
//! * [`trsm_left_lower_notrans`] — `B ← L⁻¹·B` (forward substitution),
//! * [`trsm_left_lower_trans`] — `B ← L⁻ᵀ·B` (backward substitution).

use crate::dense::DenseMatrix;

/// `B ← B · L⁻ᵀ`, with `L` lower triangular (`L` is `n×n`, `B` is `m×n`).
///
/// This is the `TRSM` used in the panel step of the right-looking Cholesky:
/// after `L_kk` is factored, every tile below it is multiplied by `L_kk⁻ᵀ`.
pub fn trsm_right_lower_trans(l: &DenseMatrix, b: &mut DenseMatrix) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "trsm: L must be square");
    assert_eq!(b.ncols(), n, "trsm: B column count must match L");
    let m = b.nrows();
    // Solve X * L^T = B  <=>  for each row x of X: L x^T = b^T... done columnwise:
    // column j of X: X[:,j] = (B[:,j] - sum_{k<j} X[:,k] * L[j,k]) / L[j,j]
    for j in 0..n {
        let ljj = l.get(j, j);
        assert!(ljj != 0.0, "trsm: zero diagonal in triangular factor");
        for k in 0..j {
            let ljk = l.get(j, k);
            if ljk == 0.0 {
                continue;
            }
            let (xk, xj) = b.two_cols_mut(k, j);
            for i in 0..m {
                xj[i] -= xk[i] * ljk;
            }
        }
        let xj = b.col_mut(j);
        let inv = 1.0 / ljj;
        for i in 0..m {
            xj[i] *= inv;
        }
    }
}

/// `B ← L⁻¹ · B`, with `L` lower triangular (`L` is `m×m`, `B` is `m×n`).
///
/// Forward substitution on every column of `B`; used to whiten data vectors,
/// compute Mahalanobis terms in the Gaussian log-likelihood, and for the TLR
/// `TRSM` applied to the `V` factor of an off-diagonal low-rank tile.
pub fn trsm_left_lower_notrans(l: &DenseMatrix, b: &mut DenseMatrix) {
    let m = l.nrows();
    assert_eq!(l.ncols(), m, "trsm: L must be square");
    assert_eq!(b.nrows(), m, "trsm: B row count must match L");
    let n = b.ncols();
    for j in 0..n {
        let col = b.col_mut(j);
        for i in 0..m {
            let mut s = col[i];
            for k in 0..i {
                s -= l.get(i, k) * col[k];
            }
            let lii = l.get(i, i);
            debug_assert!(lii != 0.0, "trsm: zero diagonal");
            col[i] = s / lii;
        }
    }
}

/// `B ← L⁻ᵀ · B`, with `L` lower triangular (`L` is `m×m`, `B` is `m×n`).
///
/// Backward substitution on every column of `B` against the transpose of `L`;
/// used to complete two-sided solves `Σ⁻¹·B = L⁻ᵀ·(L⁻¹·B)`.
pub fn trsm_left_lower_trans(l: &DenseMatrix, b: &mut DenseMatrix) {
    let m = l.nrows();
    assert_eq!(l.ncols(), m, "trsm: L must be square");
    assert_eq!(b.nrows(), m, "trsm: B row count must match L");
    let n = b.ncols();
    for j in 0..n {
        let col = b.col_mut(j);
        for ii in 0..m {
            let i = m - 1 - ii;
            let mut s = col[i];
            for k in (i + 1)..m {
                // (L^T)[i,k] = L[k,i]
                s -= l.get(k, i) * col[k];
            }
            let lii = l.get(i, i);
            debug_assert!(lii != 0.0, "trsm: zero diagonal");
            col[i] = s / lii;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn lower_triangular(n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(n, n, |i, j| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i > j {
                v
            } else if i == j {
                2.0 + v.abs() // well away from zero
            } else {
                0.0
            }
        })
    }

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn right_lower_trans_solves_xlt_equals_b() {
        let n = 6;
        let l = lower_triangular(n, 5);
        let b0 = rand_matrix(4, n, 6);
        let mut x = b0.clone();
        trsm_right_lower_trans(&l, &mut x);
        // Check X * L^T == B.
        let reconstructed = x.matmul(&l.transpose());
        assert!(max_abs_diff(&reconstructed, &b0) < 1e-11);
    }

    #[test]
    fn left_lower_notrans_solves_lx_equals_b() {
        let m = 7;
        let l = lower_triangular(m, 15);
        let b0 = rand_matrix(m, 3, 16);
        let mut x = b0.clone();
        trsm_left_lower_notrans(&l, &mut x);
        let reconstructed = l.matmul(&x);
        assert!(max_abs_diff(&reconstructed, &b0) < 1e-11);
    }

    #[test]
    fn left_lower_trans_solves_ltx_equals_b() {
        let m = 7;
        let l = lower_triangular(m, 25);
        let b0 = rand_matrix(m, 2, 26);
        let mut x = b0.clone();
        trsm_left_lower_trans(&l, &mut x);
        let reconstructed = l.transpose().matmul(&x);
        assert!(max_abs_diff(&reconstructed, &b0) < 1e-11);
    }

    #[test]
    fn forward_then_backward_equals_full_spd_solve() {
        // L L^T x = b  =>  x = L^-T L^-1 b; verify against direct reconstruction.
        let m = 5;
        let l = lower_triangular(m, 35);
        let sigma = l.matmul(&l.transpose());
        let b0 = rand_matrix(m, 1, 36);
        let mut x = b0.clone();
        trsm_left_lower_notrans(&l, &mut x);
        trsm_left_lower_trans(&l, &mut x);
        let reconstructed = sigma.matmul(&x);
        assert!(max_abs_diff(&reconstructed, &b0) < 1e-10);
    }

    #[test]
    fn identity_triangle_is_noop() {
        let l = DenseMatrix::identity(4);
        let b0 = rand_matrix(4, 4, 45);
        let mut b = b0.clone();
        trsm_right_lower_trans(&l, &mut b);
        assert!(max_abs_diff(&b, &b0) < 1e-15);
        trsm_left_lower_notrans(&l, &mut b);
        trsm_left_lower_trans(&l, &mut b);
        assert!(max_abs_diff(&b, &b0) < 1e-15);
    }

    #[test]
    #[should_panic]
    fn mismatched_dimensions_panic() {
        let l = lower_triangular(4, 1);
        let mut b = DenseMatrix::zeros(3, 3);
        trsm_right_lower_trans(&l, &mut b);
    }
}
