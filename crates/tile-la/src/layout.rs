//! One-dimensional tiling of an index range into fixed-size blocks.
//!
//! The same layout object describes both dimensions of the square covariance
//! matrix and the row dimension of the `n × N` sample panels; the PMVN sample
//! dimension uses its own layout when tiled.

/// A partition of `0..n` into `ceil(n / nb)` consecutive blocks of size `nb`
/// (the final block may be smaller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLayout {
    n: usize,
    nb: usize,
}

impl TileLayout {
    /// Create a layout for a dimension of size `n` with tile size `nb`.
    pub fn new(n: usize, nb: usize) -> Self {
        assert!(n > 0, "layout: dimension must be positive");
        assert!(nb > 0, "layout: tile size must be positive");
        Self { n, nb }
    }

    /// Total dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal tile size.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// First global index covered by tile `t`.
    #[inline]
    pub fn tile_start(&self, t: usize) -> usize {
        debug_assert!(t < self.num_tiles());
        t * self.nb
    }

    /// Number of indices covered by tile `t` (equal to `nb` except possibly for
    /// the last tile).
    #[inline]
    pub fn tile_size(&self, t: usize) -> usize {
        debug_assert!(t < self.num_tiles());
        let start = self.tile_start(t);
        self.nb.min(self.n - start)
    }

    /// Global index range of tile `t`.
    #[inline]
    pub fn tile_range(&self, t: usize) -> std::ops::Range<usize> {
        let s = self.tile_start(t);
        s..s + self.tile_size(t)
    }

    /// Tile index containing global index `i`.
    #[inline]
    pub fn tile_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        i / self.nb
    }

    /// Offset of global index `i` within its tile.
    #[inline]
    pub fn offset_in_tile(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        i % self.nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let l = TileLayout::new(12, 4);
        assert_eq!(l.num_tiles(), 3);
        for t in 0..3 {
            assert_eq!(l.tile_size(t), 4);
            assert_eq!(l.tile_start(t), 4 * t);
        }
    }

    #[test]
    fn ragged_last_tile() {
        let l = TileLayout::new(10, 4);
        assert_eq!(l.num_tiles(), 3);
        assert_eq!(l.tile_size(0), 4);
        assert_eq!(l.tile_size(2), 2);
        assert_eq!(l.tile_range(2), 8..10);
    }

    #[test]
    fn tile_size_larger_than_dimension() {
        let l = TileLayout::new(5, 100);
        assert_eq!(l.num_tiles(), 1);
        assert_eq!(l.tile_size(0), 5);
    }

    #[test]
    fn index_mapping_roundtrip() {
        let l = TileLayout::new(23, 7);
        for i in 0..23 {
            let t = l.tile_of(i);
            let o = l.offset_in_tile(i);
            assert_eq!(l.tile_start(t) + o, i);
            assert!(o < l.tile_size(t));
        }
    }

    #[test]
    fn ranges_cover_dimension_exactly_once() {
        let l = TileLayout::new(37, 8);
        let mut covered = [0u32; 37];
        for t in 0..l.num_tiles() {
            for i in l.tile_range(t) {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic]
    fn zero_tile_size_panics() {
        TileLayout::new(10, 0);
    }
}
