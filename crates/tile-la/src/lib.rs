//! # tile-la — tiled dense linear algebra
//!
//! A self-contained, pure-Rust substitute for the dense linear algebra stack the
//! paper builds on (Chameleon + BLAS/LAPACK). It provides:
//!
//! * [`DenseMatrix`] — a column-major dense matrix with the usual constructors,
//!   views and reference operations,
//! * [`kernels`] — BLAS-3 style tile kernels (`gemm`, `trsm`, `syrk`, `potrf`)
//!   plus Householder [`qr`](kernels::qr) and one-sided Jacobi
//!   [`svd`](kernels::svd) used for low-rank compression,
//! * [`TileLayout`] — 1-D tiling of a dimension into fixed-size blocks,
//! * [`SymTileMatrix`] — a symmetric matrix stored as its lower-triangular tiles
//!   (the layout used for covariance matrices and their Cholesky factors),
//! * [`cholesky`] — the parallel right-looking tiled Cholesky factorization,
//! * [`dag`] — the same factorization as a dependency-inferred task graph on
//!   the `task-runtime` executor (the default scheduler), with the building
//!   blocks (`detach_tiles`, `submit_factor_tasks`, `FactorStatus`) the fused
//!   PMVN pipeline composes with,
//! * [`solve`] — tiled triangular solves against dense panels,
//! * [`norms`] — Frobenius / max-abs norms and difference helpers.
//!
//! The crate deliberately contains a *reference* implementation of every
//! operation (naive triple loops on [`DenseMatrix`]) alongside the tiled
//! parallel algorithms, and the test-suite cross-checks one against the other.

pub mod cholesky;
pub mod dag;
pub mod dense;
pub mod kernels;
pub mod layout;
pub mod norms;
pub mod solve;
pub mod sym_tile;

pub use cholesky::{potrf_tiled, potrf_tiled_forkjoin, CholeskyError};
pub use dag::{potrf_tiled_dag, potrf_tiled_pool, potrf_tiled_stream, FactorStatus};
pub use dense::DenseMatrix;
pub use layout::TileLayout;
pub use norms::{frobenius_norm, max_abs_diff};
pub use solve::{
    multiply_lower_panel, solve_lower_panel, solve_lower_transpose_panel, solve_spd_panel,
};
pub use sym_tile::SymTileMatrix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_tiled_cholesky_reconstructs_spd_matrix() {
        // Build a well-conditioned SPD matrix, factor it tiled, multiply back.
        let n = 37;
        let nb = 8;
        let spd = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / 10.0).exp() + if i == j { 0.5 } else { 0.0 }
        };
        let mut a = SymTileMatrix::from_fn(n, nb, spd);
        potrf_tiled(&mut a, 1).expect("factorization should succeed");
        let l = a.to_dense_lower();
        let rec = l.matmul_nt(&l);
        let orig = DenseMatrix::from_fn(n, n, spd);
        assert!(max_abs_diff(&rec, &orig) < 1e-10);
    }
}
