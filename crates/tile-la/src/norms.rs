//! Matrix norms and comparison helpers used throughout the test-suites and the
//! accuracy experiments.

use crate::dense::DenseMatrix;

/// Frobenius norm of a dense matrix.
pub fn frobenius_norm(a: &DenseMatrix) -> f64 {
    a.frobenius_norm()
}

/// Largest absolute element-wise difference between two equally sized matrices.
pub fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.nrows(), b.nrows(), "max_abs_diff: row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "max_abs_diff: col mismatch");
    a.data()
        .iter()
        .zip(b.data().iter())
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Relative Frobenius-norm difference `‖A − B‖_F / ‖B‖_F` (or the absolute
/// difference when `B` is the zero matrix).
pub fn relative_frobenius_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut diff = a.clone();
    diff.add_scaled(-1.0, b);
    let nb = b.frobenius_norm();
    if nb == 0.0 {
        diff.frobenius_norm()
    } else {
        diff.frobenius_norm() / nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_known_matrix() {
        let a = DenseMatrix::from_column_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!((frobenius_norm(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| (i * j) as f64);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_single_element_change() {
        let a = DenseMatrix::zeros(3, 3);
        let mut b = a.clone();
        b.set(2, 1, -0.5);
        assert_eq!(max_abs_diff(&a, &b), 0.5);
    }

    #[test]
    fn relative_diff_scales_correctly() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| ((i + j) as f64) * 10.0);
        let mut b = a.clone();
        b.scale(1.01);
        let rel = relative_frobenius_diff(&b, &a);
        assert!((rel - 0.01).abs() < 1e-12);
        let z = DenseMatrix::zeros(4, 4);
        assert!(relative_frobenius_diff(&a, &z) > 0.0);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(3, 3);
        max_abs_diff(&a, &b);
    }
}
