//! Tiled triangular solves against dense right-hand-side panels.
//!
//! Given a Cholesky factor `L` stored as a [`SymTileMatrix`], these routines
//! solve `L·X = B` (forward) and `Lᵀ·X = B` (backward) for a dense panel `B`
//! of shape `n × m`. They are used for Gaussian random field simulation
//! (`x = L·z`), posterior computations (`Σ⁻¹·B = L⁻ᵀ L⁻¹ B`) and the
//! Monte-Carlo validation algorithm.

use crate::dense::DenseMatrix;
use crate::kernels::{gemm_nn, gemm_tn, trsm_left_lower_notrans, trsm_left_lower_trans};
use crate::sym_tile::SymTileMatrix;

fn extract_row_block(b: &DenseMatrix, start: usize, rows: usize) -> DenseMatrix {
    b.submatrix(start, 0, rows, b.ncols())
}

fn write_row_block(b: &mut DenseMatrix, start: usize, block: &DenseMatrix) {
    b.copy_block_from(block, 0, 0, start, 0, block.nrows(), block.ncols());
}

/// Solve `L·X = B` in place (`B` becomes `X`), where `l` holds the lower
/// Cholesky factor tiles.
pub fn solve_lower_panel(l: &SymTileMatrix, b: &mut DenseMatrix) {
    assert_eq!(
        b.nrows(),
        l.n(),
        "solve: panel row count must equal matrix dimension"
    );
    let layout = l.layout();
    let nt = layout.num_tiles();
    for ti in 0..nt {
        let start_i = layout.tile_start(ti);
        let rows_i = layout.tile_size(ti);
        let mut block_i = extract_row_block(b, start_i, rows_i);
        for tj in 0..ti {
            let start_j = layout.tile_start(tj);
            let rows_j = layout.tile_size(tj);
            let block_j = extract_row_block(b, start_j, rows_j);
            gemm_nn(-1.0, l.tile(ti, tj), &block_j, 1.0, &mut block_i);
        }
        trsm_left_lower_notrans(l.tile(ti, ti), &mut block_i);
        write_row_block(b, start_i, &block_i);
    }
}

/// Solve `Lᵀ·X = B` in place (`B` becomes `X`).
pub fn solve_lower_transpose_panel(l: &SymTileMatrix, b: &mut DenseMatrix) {
    assert_eq!(
        b.nrows(),
        l.n(),
        "solve: panel row count must equal matrix dimension"
    );
    let layout = l.layout();
    let nt = layout.num_tiles();
    for ti in (0..nt).rev() {
        let start_i = layout.tile_start(ti);
        let rows_i = layout.tile_size(ti);
        let mut block_i = extract_row_block(b, start_i, rows_i);
        for tj in (ti + 1)..nt {
            let start_j = layout.tile_start(tj);
            let rows_j = layout.tile_size(tj);
            let block_j = extract_row_block(b, start_j, rows_j);
            // (L^T)_{ti,tj} = (L_{tj,ti})^T
            gemm_tn(-1.0, l.tile(tj, ti), &block_j, 1.0, &mut block_i);
        }
        trsm_left_lower_trans(l.tile(ti, ti), &mut block_i);
        write_row_block(b, start_i, &block_i);
    }
}

/// Full SPD solve `Σ·X = B` given the Cholesky factor of `Σ` (forward then
/// backward substitution); `B` is overwritten with the solution.
pub fn solve_spd_panel(l: &SymTileMatrix, b: &mut DenseMatrix) {
    solve_lower_panel(l, b);
    solve_lower_transpose_panel(l, b);
}

/// Multiply `Y = L·X` for a dense panel `X` (used to simulate Gaussian fields:
/// `x = L·z` with `z` standard normal).
pub fn multiply_lower_panel(l: &SymTileMatrix, x: &DenseMatrix) -> DenseMatrix {
    assert_eq!(x.nrows(), l.n());
    let layout = l.layout();
    let nt = layout.num_tiles();
    let mut y = DenseMatrix::zeros(x.nrows(), x.ncols());
    for ti in 0..nt {
        let start_i = layout.tile_start(ti);
        let rows_i = layout.tile_size(ti);
        let mut acc = DenseMatrix::zeros(rows_i, x.ncols());
        for tj in 0..=ti {
            let start_j = layout.tile_start(tj);
            let rows_j = layout.tile_size(tj);
            let xb = x.submatrix(start_j, 0, rows_j, x.ncols());
            gemm_nn(1.0, l.tile(ti, tj), &xb, 1.0, &mut acc);
        }
        y.copy_block_from(&acc, 0, 0, start_i, 0, rows_i, x.ncols());
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::potrf_tiled;
    use crate::norms::max_abs_diff;

    fn spd(n: usize, nb: usize) -> (SymTileMatrix, DenseMatrix) {
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / 6.0).exp() + if i == j { 0.01 } else { 0.0 }
        };
        let sym = SymTileMatrix::from_fn(n, nb, f);
        let dense = DenseMatrix::from_fn(n, n, f);
        (sym, dense)
    }

    fn rand_panel(n: usize, m: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(n, m, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn forward_solve_matches_direct_reconstruction() {
        let (mut a, _) = spd(33, 8);
        potrf_tiled(&mut a, 1).unwrap();
        let b0 = rand_panel(33, 4, 1);
        let mut x = b0.clone();
        solve_lower_panel(&a, &mut x);
        let l = a.to_dense_lower();
        let rec = l.matmul(&x);
        assert!(max_abs_diff(&rec, &b0) < 1e-9);
    }

    #[test]
    fn backward_solve_matches_direct_reconstruction() {
        let (mut a, _) = spd(26, 7);
        potrf_tiled(&mut a, 1).unwrap();
        let b0 = rand_panel(26, 3, 2);
        let mut x = b0.clone();
        solve_lower_transpose_panel(&a, &mut x);
        let lt = a.to_dense_lower().transpose();
        let rec = lt.matmul(&x);
        assert!(max_abs_diff(&rec, &b0) < 1e-9);
    }

    #[test]
    fn spd_solve_recovers_right_hand_side() {
        let (mut a, dense) = spd(40, 8);
        potrf_tiled(&mut a, 1).unwrap();
        let b0 = rand_panel(40, 2, 3);
        let mut x = b0.clone();
        solve_spd_panel(&a, &mut x);
        let rec = dense.matmul(&x);
        assert!(max_abs_diff(&rec, &b0) < 1e-8);
    }

    #[test]
    fn multiply_lower_matches_dense_product() {
        let (mut a, _) = spd(29, 9);
        potrf_tiled(&mut a, 1).unwrap();
        let z = rand_panel(29, 5, 4);
        let y = multiply_lower_panel(&a, &z);
        let l = a.to_dense_lower();
        let want = l.matmul(&z);
        assert!(max_abs_diff(&y, &want) < 1e-11);
    }

    #[test]
    fn multiply_then_solve_is_identity() {
        let (mut a, _) = spd(24, 5);
        potrf_tiled(&mut a, 1).unwrap();
        let z = rand_panel(24, 3, 5);
        let mut y = multiply_lower_panel(&a, &z);
        solve_lower_panel(&a, &mut y);
        assert!(max_abs_diff(&y, &z) < 1e-9);
    }

    #[test]
    #[should_panic]
    fn mismatched_panel_rows_panic() {
        let (mut a, _) = spd(16, 4);
        potrf_tiled(&mut a, 1).unwrap();
        let mut b = DenseMatrix::zeros(10, 2);
        solve_lower_panel(&a, &mut b);
    }
}
