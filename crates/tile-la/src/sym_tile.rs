//! Symmetric matrix stored as its lower-triangular tiles.
//!
//! This mirrors the descriptor layout the paper uses for the covariance matrix
//! `Σ` and its Cholesky factor `L`: only tiles `(i, j)` with `i ≥ j` are held
//! in memory (halving storage for large `n`), and each tile is an independent
//! [`DenseMatrix`] so tasks can own or borrow tiles individually.

use crate::dense::DenseMatrix;
use crate::layout::TileLayout;
use rayon::prelude::*;

/// A symmetric `n × n` matrix stored as lower-triangular tiles of size `nb`.
#[derive(Debug, Clone)]
pub struct SymTileMatrix {
    layout: TileLayout,
    /// Lower tiles in row-major triangular order: tile `(i, j)` (with `j ≤ i`)
    /// lives at index `i·(i+1)/2 + j`.
    tiles: Vec<DenseMatrix>,
}

impl SymTileMatrix {
    fn tri_index(i: usize, j: usize) -> usize {
        debug_assert!(j <= i);
        i * (i + 1) / 2 + j
    }

    /// An all-zero symmetric tile matrix.
    pub fn zeros(n: usize, nb: usize) -> Self {
        let layout = TileLayout::new(n, nb);
        let nt = layout.num_tiles();
        let mut tiles = Vec::with_capacity(nt * (nt + 1) / 2);
        for i in 0..nt {
            for j in 0..=i {
                tiles.push(DenseMatrix::zeros(layout.tile_size(i), layout.tile_size(j)));
            }
        }
        Self { layout, tiles }
    }

    /// Build from an element function `f(row, col)`; only the lower triangle is
    /// evaluated, and tiles are generated in parallel.
    ///
    /// `f` must be symmetric for the result to represent a symmetric matrix
    /// (only `row ≥ col` entries are ever requested).
    pub fn from_fn(n: usize, nb: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let layout = TileLayout::new(n, nb);
        let nt = layout.num_tiles();
        let coords: Vec<(usize, usize)> =
            (0..nt).flat_map(|i| (0..=i).map(move |j| (i, j))).collect();
        let tiles: Vec<DenseMatrix> = coords
            .par_iter()
            .map(|&(ti, tj)| {
                let ri = layout.tile_start(ti);
                let rj = layout.tile_start(tj);
                DenseMatrix::from_fn(layout.tile_size(ti), layout.tile_size(tj), |a, b| {
                    f(ri + a, rj + b)
                })
            })
            .collect();
        Self { layout, tiles }
    }

    /// Build from a full dense symmetric matrix (used in tests and small
    /// reference computations).
    pub fn from_dense(a: &DenseMatrix, nb: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "from_dense: matrix must be square");
        Self::from_fn(a.nrows(), nb, |i, j| a.get(i, j))
    }

    /// The tiling layout (shared by rows and columns).
    pub fn layout(&self) -> TileLayout {
        self.layout
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.layout.nb()
    }

    /// Number of tile rows/columns.
    pub fn num_tiles(&self) -> usize {
        self.layout.num_tiles()
    }

    /// Borrow tile `(i, j)` (requires `j ≤ i`).
    pub fn tile(&self, i: usize, j: usize) -> &DenseMatrix {
        assert!(
            j <= i,
            "SymTileMatrix stores only lower tiles (got ({i},{j}))"
        );
        &self.tiles[Self::tri_index(i, j)]
    }

    /// Mutably borrow tile `(i, j)` (requires `j ≤ i`).
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut DenseMatrix {
        assert!(
            j <= i,
            "SymTileMatrix stores only lower tiles (got ({i},{j}))"
        );
        &mut self.tiles[Self::tri_index(i, j)]
    }

    /// Move tile `(i, j)` out, leaving an empty placeholder (used by the
    /// parallel factorization to obtain disjoint mutable tiles).
    pub(crate) fn take_tile(&mut self, i: usize, j: usize) -> DenseMatrix {
        std::mem::replace(
            &mut self.tiles[Self::tri_index(i, j)],
            DenseMatrix::zeros(1, 1),
        )
    }

    /// Put a tile back after [`take_tile`](Self::take_tile).
    pub(crate) fn put_tile(&mut self, i: usize, j: usize, t: DenseMatrix) {
        self.tiles[Self::tri_index(i, j)] = t;
    }

    /// Element access through the symmetric structure (either triangle).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let ti = self.layout.tile_of(i);
        let tj = self.layout.tile_of(j);
        self.tile(ti, tj)
            .get(self.layout.offset_in_tile(i), self.layout.offset_in_tile(j))
    }

    /// Element assignment (writes the lower-triangle representative).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let ti = self.layout.tile_of(i);
        let tj = self.layout.tile_of(j);
        let oi = self.layout.offset_in_tile(i);
        let oj = self.layout.offset_in_tile(j);
        self.tile_mut(ti, tj).set(oi, oj, v);
    }

    /// Expand to a full dense symmetric matrix.
    pub fn to_dense_sym(&self) -> DenseMatrix {
        let n = self.n();
        DenseMatrix::from_fn(n, n, |i, j| self.get(i, j))
    }

    /// Expand only the lower triangle (upper part zero) — the natural view of a
    /// Cholesky factor stored in this layout.
    pub fn to_dense_lower(&self) -> DenseMatrix {
        let n = self.n();
        DenseMatrix::from_fn(n, n, |i, j| if i >= j { self.get(i, j) } else { 0.0 })
    }

    /// The diagonal elements.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n()).map(|i| self.get(i, i)).collect()
    }

    /// Total number of stored `f64` values (memory footprint measure).
    pub fn stored_elements(&self) -> usize {
        self.tiles.iter().map(|t| t.nrows() * t.ncols()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn kernel(i: usize, j: usize) -> f64 {
        (-((i as f64 - j as f64).abs()) / 3.0).exp()
    }

    #[test]
    fn from_fn_matches_dense_construction() {
        let n = 13;
        let a = SymTileMatrix::from_fn(n, 4, kernel);
        let d = DenseMatrix::from_fn(n, n, kernel);
        assert!(max_abs_diff(&a.to_dense_sym(), &d) < 1e-15);
    }

    #[test]
    fn element_access_both_triangles() {
        let a = SymTileMatrix::from_fn(10, 3, kernel);
        for i in 0..10 {
            for j in 0..10 {
                assert!((a.get(i, j) - kernel(i.max(j), i.min(j))).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn set_updates_symmetric_pair() {
        let mut a = SymTileMatrix::zeros(6, 2);
        a.set(1, 4, 7.5); // upper-triangle request maps to (4,1)
        assert_eq!(a.get(4, 1), 7.5);
        assert_eq!(a.get(1, 4), 7.5);
    }

    #[test]
    fn storage_is_roughly_half_of_dense() {
        let n = 64;
        let a = SymTileMatrix::zeros(n, 8);
        let stored = a.stored_elements();
        assert!(stored < n * n);
        // Lower-triangular tile storage for an exact tiling: nt(nt+1)/2 * nb^2.
        assert_eq!(stored, 8 * 9 / 2 * 64);
    }

    #[test]
    fn ragged_edge_tiles_have_correct_sizes() {
        let a = SymTileMatrix::zeros(11, 4);
        assert_eq!(a.num_tiles(), 3);
        assert_eq!(a.tile(2, 2).nrows(), 3);
        assert_eq!(a.tile(2, 0).nrows(), 3);
        assert_eq!(a.tile(2, 0).ncols(), 4);
    }

    #[test]
    fn diagonal_extraction() {
        let a = SymTileMatrix::from_fn(9, 4, |i, j| if i == j { i as f64 } else { 0.0 });
        assert_eq!(a.diagonal(), (0..9).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn upper_tile_borrow_panics() {
        let a = SymTileMatrix::zeros(8, 4);
        let _ = a.tile(0, 1);
    }

    #[test]
    fn to_dense_lower_zeroes_upper() {
        let a = SymTileMatrix::from_fn(7, 3, kernel);
        let l = a.to_dense_lower();
        for i in 0..7 {
            for j in (i + 1)..7 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }
}
