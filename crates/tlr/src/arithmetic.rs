//! Low-rank tile arithmetic used by the TLR Cholesky factorization and the
//! TLR-aware PMVN propagation step.
//!
//! All operations work on factor pairs without ever forming the dense product
//! of a low-rank tile, except for the final small `rank × rank` core matrices.

use crate::compress::CompressionTol;
use crate::lowrank::LowRankBlock;
use tile_la::kernels::{gemm_nn, gemm_nt, gemm_tn, jacobi_svd, qr_factor};
use tile_la::DenseMatrix;

/// `C ← β·C + α·(U·Vᵀ)·B` — low-rank tile times dense panel.
///
/// This is the kernel used when the PMVN propagation (`A_{j,k} ← A_{j,k} −
/// L_{j,r}·Y_{r,k}`) runs against a TLR Cholesky factor: the cost drops from
/// `O(m²·p)` to `O(k·m·p)` for rank `k`.
pub fn lr_gemm_panel(
    alpha: f64,
    lr: &LowRankBlock,
    b: &DenseMatrix,
    beta: f64,
    c: &mut DenseMatrix,
) {
    assert_eq!(
        lr.ncols(),
        b.nrows(),
        "lr_gemm_panel: inner dimension mismatch"
    );
    assert_eq!(c.nrows(), lr.nrows(), "lr_gemm_panel: output row mismatch");
    assert_eq!(c.ncols(), b.ncols(), "lr_gemm_panel: output col mismatch");
    if lr.rank() == 0 {
        if beta != 1.0 {
            c.scale(beta);
        }
        return;
    }
    // W = V^T B  (k × p)
    let mut w = DenseMatrix::zeros(lr.rank(), b.ncols());
    gemm_tn(1.0, &lr.v, b, 0.0, &mut w);
    // C = beta C + alpha U W
    gemm_nn(alpha, &lr.u, &w, beta, c);
}

/// `Cᵀ ← β·Cᵀ + α·Bᵀ·(U·Vᵀ)ᵀ` — the chain-major (transposed-panel) variant
/// of [`lr_gemm_panel`].
///
/// The chain-major PMVN sweep stores its panels with the chain index down
/// the columns: `bt` is `p × n` (`p` chains by `n = lr.ncols()` factor
/// columns) and `ct` is `p × m`. Writing `Bᵀ = bt`, `Cᵀ = ct`, this computes
/// the transpose of [`lr_gemm_panel`]'s update via `W = Bᵀ·V` (`p × k`)
/// followed by `Cᵀ ← β·Cᵀ + α·W·Uᵀ`, so every chain's contraction runs over
/// contiguous lanes.
pub fn lr_gemm_panel_t(
    alpha: f64,
    lr: &LowRankBlock,
    bt: &DenseMatrix,
    beta: f64,
    ct: &mut DenseMatrix,
) {
    assert_eq!(
        bt.ncols(),
        lr.ncols(),
        "lr_gemm_panel_t: inner dimension mismatch"
    );
    assert_eq!(
        ct.ncols(),
        lr.nrows(),
        "lr_gemm_panel_t: output col mismatch"
    );
    assert_eq!(
        ct.nrows(),
        bt.nrows(),
        "lr_gemm_panel_t: output row mismatch"
    );
    if lr.rank() == 0 {
        if beta != 1.0 {
            ct.scale(beta);
        }
        return;
    }
    // W = B^T V  (p × k)
    let mut w = DenseMatrix::zeros(bt.nrows(), lr.rank());
    gemm_nn(1.0, bt, &lr.v, 0.0, &mut w);
    // C^T = beta C^T + alpha W U^T
    gemm_nt(alpha, &w, &lr.u, beta, ct);
}

/// `D ← D − A·Aᵀ` where `A = U·Vᵀ` is low-rank and `D` is a dense (diagonal)
/// tile — the TLR `SYRK`.
pub fn lr_aa_t_update(diag: &mut DenseMatrix, a: &LowRankBlock) {
    assert_eq!(diag.nrows(), a.nrows());
    assert_eq!(diag.ncols(), a.nrows());
    if a.rank() == 0 {
        return;
    }
    // W = V^T V (k × k), T = U W (m × k), D -= T U^T.
    let mut w = DenseMatrix::zeros(a.rank(), a.rank());
    gemm_tn(1.0, &a.v, &a.v, 0.0, &mut w);
    let mut t = DenseMatrix::zeros(a.nrows(), a.rank());
    gemm_nn(1.0, &a.u, &w, 0.0, &mut t);
    gemm_nt(-1.0, &t, &a.u, 1.0, diag);
}

/// Add two low-rank representations and recompress: returns a low-rank block
/// representing `U₁V₁ᵀ + U₂V₂ᵀ` truncated back to the requested tolerance.
///
/// Recompression uses the standard QR + small-SVD rounding: `[U₁ U₂] = Q_u R_u`,
/// `[V₁ V₂] = Q_v R_v`, then the SVD of the small core `R_u R_vᵀ` decides the
/// new rank.
pub fn lr_add_recompress(
    a: &LowRankBlock,
    b: &LowRankBlock,
    tol: CompressionTol,
    max_rank: usize,
) -> LowRankBlock {
    assert_eq!(a.nrows(), b.nrows(), "lr_add: row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "lr_add: col mismatch");
    let m = a.nrows();
    let n = a.ncols();
    let ra = a.rank();
    let rb = b.rank();
    if ra + rb == 0 {
        return LowRankBlock::zero(m, n);
    }
    // Concatenate factors.
    let ucat = DenseMatrix::from_fn(m, ra + rb, |i, j| {
        if j < ra {
            a.u.get(i, j)
        } else {
            b.u.get(i, j - ra)
        }
    });
    let vcat = DenseMatrix::from_fn(n, ra + rb, |i, j| {
        if j < ra {
            a.v.get(i, j)
        } else {
            b.v.get(i, j - ra)
        }
    });
    let qu = qr_factor(&ucat);
    let qv = qr_factor(&vcat);
    // Core = R_u R_v^T  (small square of size <= ra+rb).
    let core = qu.r.matmul_nt(&qv.r);
    let svd = jacobi_svd(&core);

    // Rank selection identical to compress_dense.
    let fro = svd.s.iter().map(|s| s * s).sum::<f64>().sqrt();
    let threshold = tol.absolute_for(fro);
    let kmax = svd.s.len();
    let mut tail = 0.0;
    let mut rank = kmax;
    // Walk from the smallest singular value upward accumulating the tail.
    for k in (0..=kmax).rev() {
        if k < kmax {
            tail += svd.s[k] * svd.s[k];
        }
        if tail.sqrt() <= threshold {
            rank = k;
        } else {
            break;
        }
    }
    let rank = rank.min(max_rank);
    if rank == 0 {
        return LowRankBlock::zero(m, n);
    }

    // U = Q_u * (U_core * diag(s)),  V = Q_v * V_core.
    let mut us = DenseMatrix::zeros(svd.u.nrows(), rank);
    for r in 0..rank {
        let s = svd.s[r];
        let src = svd.u.col(r);
        let dst = us.col_mut(r);
        for i in 0..svd.u.nrows() {
            dst[i] = src[i] * s;
        }
    }
    let mut u = DenseMatrix::zeros(m, rank);
    gemm_nn(1.0, &qu.q, &us, 0.0, &mut u);

    let vt_rows = DenseMatrix::from_fn(svd.vt.ncols(), rank, |i, j| svd.vt.get(j, i));
    let mut v = DenseMatrix::zeros(n, rank);
    gemm_nn(1.0, &qv.q, &vt_rows, 0.0, &mut v);

    LowRankBlock::new(u, v)
}

/// `C ← C − A·Bᵀ` where all three tiles are low-rank — the TLR `GEMM` of the
/// Cholesky trailing update, with recompression of the result.
pub fn lr_lr_t_update(
    c: &LowRankBlock,
    a: &LowRankBlock,
    b: &LowRankBlock,
    tol: CompressionTol,
    max_rank: usize,
) -> LowRankBlock {
    assert_eq!(a.ncols(), b.ncols(), "lr_lr_t: inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), b.nrows());
    if a.rank() == 0 || b.rank() == 0 {
        return c.clone();
    }
    // A B^T = U_a (V_a^T V_b) U_b^T: X = -U_a (V_a^T V_b), Y = U_b.
    let mut w = DenseMatrix::zeros(a.rank(), b.rank());
    gemm_tn(1.0, &a.v, &b.v, 0.0, &mut w);
    let mut x = DenseMatrix::zeros(a.nrows(), b.rank());
    gemm_nn(-1.0, &a.u, &w, 0.0, &mut x);
    let update = LowRankBlock::new(x, b.u.clone());
    lr_add_recompress(c, &update, tol, max_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_dense;
    use tile_la::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn rand_lowrank(m: usize, n: usize, k: usize, seed: u64) -> LowRankBlock {
        LowRankBlock::new(rand_matrix(m, k, seed), rand_matrix(n, k, seed + 1))
    }

    #[test]
    fn lr_gemm_panel_matches_dense_product() {
        let lr = rand_lowrank(8, 6, 3, 1);
        let b = rand_matrix(6, 4, 3);
        let mut c = rand_matrix(8, 4, 5);
        let mut want = c.clone();
        want.scale(0.5);
        want.add_scaled(-2.0, &lr.to_dense().matmul(&b));
        lr_gemm_panel(-2.0, &lr, &b, 0.5, &mut c);
        assert!(max_abs_diff(&c, &want) < 1e-12);
    }

    #[test]
    fn lr_gemm_panel_rank_zero_only_scales() {
        let lr = LowRankBlock::zero(5, 5);
        let b = rand_matrix(5, 3, 9);
        let mut c = rand_matrix(5, 3, 10);
        let mut want = c.clone();
        want.scale(0.25);
        lr_gemm_panel(1.0, &lr, &b, 0.25, &mut c);
        assert!(max_abs_diff(&c, &want) < 1e-15);
    }

    #[test]
    fn lr_gemm_panel_t_matches_transposed_dense_product() {
        let lr = rand_lowrank(8, 6, 3, 1);
        let bt = rand_matrix(4, 6, 3); // 4 chains × 6 factor columns
        let mut ct = rand_matrix(4, 8, 5);
        let mut want = ct.clone();
        want.scale(0.5);
        // Cᵀ += α·Bᵀ·(UVᵀ)ᵀ  ⇔  want += α·bt·dense(lr)ᵀ
        want.add_scaled(-2.0, &bt.matmul_nt(&lr.to_dense()));
        lr_gemm_panel_t(-2.0, &lr, &bt, 0.5, &mut ct);
        assert!(max_abs_diff(&ct, &want) < 1e-12);
    }

    #[test]
    fn lr_gemm_panel_t_rank_zero_only_scales() {
        let lr = LowRankBlock::zero(5, 6);
        let bt = rand_matrix(3, 6, 9);
        let mut ct = rand_matrix(3, 5, 10);
        let mut want = ct.clone();
        want.scale(0.25);
        lr_gemm_panel_t(1.0, &lr, &bt, 0.25, &mut ct);
        assert!(max_abs_diff(&ct, &want) < 1e-15);
    }

    #[test]
    fn lr_syrk_matches_dense_update() {
        let a = rand_lowrank(7, 9, 2, 11);
        let mut d = rand_matrix(7, 7, 13);
        let mut want = d.clone();
        let ad = a.to_dense();
        want.add_scaled(-1.0, &ad.matmul_nt(&ad));
        lr_aa_t_update(&mut d, &a);
        assert!(max_abs_diff(&d, &want) < 1e-12);
    }

    #[test]
    fn add_recompress_is_accurate_and_rank_bounded() {
        let a = rand_lowrank(12, 10, 3, 21);
        let b = rand_lowrank(12, 10, 2, 23);
        let sum = lr_add_recompress(&a, &b, CompressionTol::Absolute(1e-12), usize::MAX);
        let mut want = a.to_dense();
        want.add_scaled(1.0, &b.to_dense());
        assert!(max_abs_diff(&sum.to_dense(), &want) < 1e-10);
        assert!(sum.rank() <= 5);
    }

    #[test]
    fn add_recompress_detects_cancellation() {
        // a + (-a) must recompress to (near) rank zero.
        let a = rand_lowrank(9, 9, 3, 31);
        let neg = LowRankBlock::new(
            {
                let mut u = a.u.clone();
                u.scale(-1.0);
                u
            },
            a.v.clone(),
        );
        let sum = lr_add_recompress(&a, &neg, CompressionTol::Absolute(1e-10), usize::MAX);
        assert_eq!(sum.rank(), 0, "cancelling sum should truncate to rank 0");
    }

    #[test]
    fn lr_lr_t_update_matches_dense_computation() {
        let c = rand_lowrank(8, 6, 2, 41);
        let a = rand_lowrank(8, 5, 3, 43);
        let b = rand_lowrank(6, 5, 2, 45);
        let result = lr_lr_t_update(&c, &a, &b, CompressionTol::Absolute(1e-12), usize::MAX);
        let mut want = c.to_dense();
        want.add_scaled(-1.0, &a.to_dense().matmul_nt(&b.to_dense()));
        assert!(max_abs_diff(&result.to_dense(), &want) < 1e-10);
    }

    #[test]
    fn update_with_rank_zero_operand_is_identity() {
        let c = rand_lowrank(6, 6, 2, 51);
        let a = LowRankBlock::zero(6, 4);
        let b = rand_lowrank(6, 4, 2, 53);
        let result = lr_lr_t_update(&c, &a, &b, CompressionTol::Absolute(1e-8), usize::MAX);
        assert!(max_abs_diff(&result.to_dense(), &c.to_dense()) < 1e-14);
    }

    #[test]
    fn recompression_respects_loose_tolerance_by_dropping_rank() {
        // Build a nearly-rank-1 sum out of a dominant block and a tiny one.
        let dominant = rand_lowrank(15, 15, 1, 61);
        let mut small_u = rand_matrix(15, 3, 63);
        small_u.scale(1e-9);
        let small = LowRankBlock::new(small_u, rand_matrix(15, 3, 65));
        let sum = lr_add_recompress(
            &dominant,
            &small,
            CompressionTol::Relative(1e-4),
            usize::MAX,
        );
        assert_eq!(sum.rank(), 1);
    }

    #[test]
    fn compress_then_add_roundtrip() {
        // Compress two halves of a smooth tile and verify the recompressed sum
        // approximates the full tile.
        let full = DenseMatrix::from_fn(20, 20, |i, j| {
            (-((i as f64 - j as f64 - 30.0).abs()) / 25.0).exp()
        });
        let half1 = DenseMatrix::from_fn(20, 20, |i, j| 0.5 * full.get(i, j));
        let a = compress_dense(&half1, CompressionTol::Absolute(1e-10), usize::MAX);
        let sum = lr_add_recompress(&a, &a, CompressionTol::Absolute(1e-9), usize::MAX);
        assert!(max_abs_diff(&sum.to_dense(), &full) < 1e-7);
    }
}
