//! Tile Low-Rank Cholesky factorization (the HiCMA `POTRF`).
//!
//! Identical task structure to the dense tiled Cholesky, but the panel and
//! update kernels act on compressed tiles:
//!
//! * `POTRF` — dense, on the (dense) diagonal tiles,
//! * `TRSM`  — only the `V` factor of each low-rank panel tile is solved,
//! * `SYRK`  — diagonal update from a low-rank tile (`lr_aa_t_update`),
//! * `GEMM`  — low-rank × low-rank update with recompression
//!   (`lr_lr_t_update`).
//!
//! With strongly-correlated covariance kernels the off-diagonal ranks are tiny
//! (cf. the paper's Fig. 5), which is where the 9–20× speedups over the dense
//! factorization come from.

use crate::arithmetic::{lr_aa_t_update, lr_lr_t_update};
use crate::lowrank::LowRankBlock;
use crate::tlr_matrix::TlrMatrix;
use rayon::prelude::*;
use tile_la::kernels::{potrf_in_place, trsm_left_lower_notrans};
use tile_la::DenseMatrix;

/// Failure modes of the TLR Cholesky factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlrCholeskyError {
    /// A diagonal tile stopped being positive definite — either the matrix is
    /// genuinely not SPD or the compression tolerance is too loose for it to
    /// remain numerically SPD.
    NotPositiveDefinite {
        /// Global pivot index.
        pivot: usize,
    },
}

impl std::fmt::Display for TlrCholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlrCholeskyError::NotPositiveDefinite { pivot } => write!(
                f,
                "TLR matrix is not positive definite at pivot {pivot} (matrix not SPD or compression tolerance too loose)"
            ),
        }
    }
}

impl std::error::Error for TlrCholeskyError {}

/// In-place TLR Cholesky factorization.
///
/// On success the diagonal tiles hold the dense `L_kk` factors and the
/// off-diagonal tiles hold the compressed `L_ik` factors. This is a thin
/// wrapper over the DAG-scheduled [`crate::dag::potrf_tlr_dag`];
/// `min_parallel_tiles` is the historical fork-join knob and maps onto a
/// worker count (`usize::MAX` runs one worker, anything else uses all cores).
pub fn potrf_tlr(a: &mut TlrMatrix, min_parallel_tiles: usize) -> Result<(), TlrCholeskyError> {
    let workers = if min_parallel_tiles == usize::MAX {
        1
    } else {
        0
    };
    crate::dag::potrf_tlr_dag(a, workers)
}

/// In-place TLR Cholesky with the historical per-panel fork-join scheduling,
/// kept as the scheduling baseline for benchmarks and cross-checks.
pub fn potrf_tlr_forkjoin(
    a: &mut TlrMatrix,
    min_parallel_tiles: usize,
) -> Result<(), TlrCholeskyError> {
    let nt = a.num_tiles();
    let layout = a.layout();
    let tol = a.tol();
    let max_rank = a.max_rank();

    for k in 0..nt {
        // Dense POTRF on the diagonal tile.
        {
            let dk = a.diag_tile_mut(k);
            potrf_in_place(dk).map_err(|local| TlrCholeskyError::NotPositiveDefinite {
                pivot: layout.tile_start(k) + local,
            })?;
        }

        if k + 1 == nt {
            break;
        }

        // Panel TRSM: off(i,k).v <- L_kk^{-1} * off(i,k).v.
        let lkk = a.diag_tile(k).clone();
        let mut panel: Vec<(usize, LowRankBlock)> =
            ((k + 1)..nt).map(|i| (i, a.take_off(i, k))).collect();
        let trsm_one = |(_, blk): &mut (usize, LowRankBlock)| {
            if blk.rank() > 0 {
                trsm_left_lower_notrans(&lkk, &mut blk.v);
            }
        };
        if panel.len() >= min_parallel_tiles {
            panel.par_iter_mut().for_each(trsm_one);
        } else {
            panel.iter_mut().for_each(trsm_one);
        }
        for (i, blk) in panel {
            a.put_off(i, k, blk);
        }

        // Trailing update.
        enum Target {
            Diag(usize, DenseMatrix),
            Off(usize, usize, LowRankBlock),
        }
        let mut updates: Vec<Target> = Vec::new();
        for i in (k + 1)..nt {
            for j in (k + 1)..=i {
                if i == j {
                    updates.push(Target::Diag(i, a.take_diag(i)));
                } else {
                    updates.push(Target::Off(i, j, a.take_off(i, j)));
                }
            }
        }
        {
            let a_ref: &TlrMatrix = a;
            let work = |t: &mut Target| match t {
                Target::Diag(j, d) => {
                    lr_aa_t_update(d, a_ref.off_tile(*j, k));
                }
                Target::Off(i, j, c) => {
                    let updated = lr_lr_t_update(
                        c,
                        a_ref.off_tile(*i, k),
                        a_ref.off_tile(*j, k),
                        tol,
                        max_rank,
                    );
                    *c = updated;
                }
            };
            if updates.len() >= min_parallel_tiles {
                updates.par_iter_mut().for_each(work);
            } else {
                updates.iter_mut().for_each(work);
            }
        }
        for t in updates {
            match t {
                Target::Diag(i, d) => a.put_diag(i, d),
                Target::Off(i, j, c) => a.put_off(i, j, c),
            }
        }
    }
    Ok(())
}

/// Log-determinant from a TLR Cholesky factor.
pub fn log_det_from_tlr_factor(l: &TlrMatrix) -> f64 {
    let mut s = 0.0;
    for t in 0..l.num_tiles() {
        let d = l.diag_tile(t);
        for i in 0..d.nrows() {
            s += d.get(i, i).ln();
        }
    }
    2.0 * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressionTol;
    use tile_la::{max_abs_diff, potrf_tiled, SymTileMatrix};

    fn kernel(range: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs() / 60.0;
            (-d / range).exp() + if i == j { 1e-6 } else { 0.0 }
        }
    }

    #[test]
    fn tlr_factor_matches_dense_factor_at_tight_tolerance() {
        let n = 96;
        let nb = 24;
        let f = kernel(0.5);
        let mut tlr = TlrMatrix::from_fn(n, nb, CompressionTol::Absolute(1e-10), usize::MAX, &f);
        potrf_tlr(&mut tlr, 1).unwrap();

        let mut dense = SymTileMatrix::from_fn(n, nb, &f);
        potrf_tiled(&mut dense, 1).unwrap();

        assert!(max_abs_diff(&tlr.to_dense_lower(), &dense.to_dense_lower()) < 1e-6);
    }

    #[test]
    fn reconstruction_error_scales_with_tolerance() {
        let n = 80;
        let nb = 20;
        let f = kernel(0.8);
        let orig = tile_la::DenseMatrix::from_fn(n, n, &f);
        let mut previous_err = f64::INFINITY;
        for tol in [1e-2, 1e-5, 1e-9] {
            let mut tlr = TlrMatrix::from_fn(n, nb, CompressionTol::Absolute(tol), usize::MAX, &f);
            potrf_tlr(&mut tlr, 1).unwrap();
            let l = tlr.to_dense_lower();
            let rec = l.matmul_nt(&l);
            let mut diff = rec.clone();
            diff.add_scaled(-1.0, &orig);
            let err = diff.frobenius_norm();
            assert!(
                err < previous_err * 1.5 + 1e-12,
                "error did not improve with tighter tolerance: {err} vs {previous_err}"
            );
            assert!(
                err < tol * 100.0 + 1e-10,
                "tol {tol}: reconstruction error {err}"
            );
            previous_err = err;
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 100;
        let f = kernel(0.6);
        let mut a1 = TlrMatrix::from_fn(n, 25, CompressionTol::Absolute(1e-8), usize::MAX, &f);
        let mut a2 = a1.clone();
        potrf_tlr(&mut a1, 1).unwrap();
        potrf_tlr(&mut a2, usize::MAX).unwrap();
        assert!(max_abs_diff(&a1.to_dense_lower(), &a2.to_dense_lower()) < 1e-9);
    }

    #[test]
    fn forward_solve_with_tlr_factor() {
        let n = 72;
        let f = kernel(0.5);
        let mut tlr = TlrMatrix::from_fn(n, 18, CompressionTol::Absolute(1e-10), usize::MAX, &f);
        potrf_tlr(&mut tlr, 1).unwrap();
        let b0 = tile_la::DenseMatrix::from_fn(n, 3, |i, j| ((i + j) as f64 * 0.37).sin());
        let mut x = b0.clone();
        tlr.solve_lower_panel(&mut x);
        let l = tlr.to_dense_lower();
        let rec = l.matmul(&x);
        assert!(max_abs_diff(&rec, &b0) < 1e-6);
    }

    #[test]
    fn multiply_lower_panel_uses_factor_consistently() {
        let n = 60;
        let f = kernel(0.4);
        let mut tlr = TlrMatrix::from_fn(n, 15, CompressionTol::Absolute(1e-10), usize::MAX, &f);
        potrf_tlr(&mut tlr, 1).unwrap();
        let z = tile_la::DenseMatrix::from_fn(n, 2, |i, j| ((i * 7 + j * 3) as f64 * 0.11).cos());
        let y = tlr.multiply_lower_panel(&z);
        let l = tlr.to_dense_lower();
        let want = l.matmul(&z);
        assert!(max_abs_diff(&y, &want) < 1e-8);
    }

    #[test]
    fn log_det_matches_dense_factor() {
        let n = 64;
        let f = kernel(0.7);
        let mut tlr = TlrMatrix::from_fn(n, 16, CompressionTol::Absolute(1e-10), usize::MAX, &f);
        potrf_tlr(&mut tlr, 1).unwrap();
        let mut dense = SymTileMatrix::from_fn(n, 16, &f);
        potrf_tiled(&mut dense, 1).unwrap();
        let want = tile_la::cholesky::log_det_from_factor(&dense);
        assert!((log_det_from_tlr_factor(&tlr) - want).abs() < 1e-6);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let f = |i: usize, j: usize| if i == j { -1.0 } else { 0.0 };
        let mut tlr = TlrMatrix::from_fn(30, 10, CompressionTol::Absolute(1e-6), usize::MAX, f);
        let err = potrf_tlr(&mut tlr, 1).unwrap_err();
        assert!(matches!(
            err,
            TlrCholeskyError::NotPositiveDefinite { pivot: 0 }
        ));
        assert!(err.to_string().contains("not positive definite"));
    }
}
