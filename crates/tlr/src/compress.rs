//! Truncated-SVD compression of dense tiles into [`LowRankBlock`]s.

use crate::lowrank::LowRankBlock;
use tile_la::kernels::jacobi_svd;
use tile_la::DenseMatrix;

/// Truncation tolerance for tile compression.
///
/// The paper's "TLR accuracy 1e-3 / 1e-4" corresponds to an absolute threshold
/// on the discarded part of each tile (HiCMA's fixed-accuracy mode); the
/// relative mode scales the threshold by each tile's own Frobenius norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionTol {
    /// Keep enough singular values that the Frobenius norm of the discarded
    /// remainder is at most this value.
    Absolute(f64),
    /// Keep enough singular values that the discarded remainder is at most
    /// `tol · ‖tile‖_F`.
    Relative(f64),
}

impl CompressionTol {
    /// The absolute threshold to apply to a tile with the given Frobenius norm.
    pub fn absolute_for(&self, tile_fro_norm: f64) -> f64 {
        match *self {
            CompressionTol::Absolute(t) => t,
            CompressionTol::Relative(t) => t * tile_fro_norm,
        }
    }

    /// The numeric tolerance value (used for reporting).
    pub fn value(&self) -> f64 {
        match *self {
            CompressionTol::Absolute(t) | CompressionTol::Relative(t) => t,
        }
    }
}

/// Compress a dense tile to a low-rank block.
///
/// The rank is the smallest `k` such that the Frobenius norm of the discarded
/// singular values is below the tolerance, additionally capped at `max_rank`.
/// The singular values are folded into `U` (i.e. `U ← U·diag(s)`), matching the
/// convention used by the low-rank arithmetic kernels.
pub fn compress_dense(tile: &DenseMatrix, tol: CompressionTol, max_rank: usize) -> LowRankBlock {
    let m = tile.nrows();
    let n = tile.ncols();
    let fro = tile.frobenius_norm();
    if fro == 0.0 {
        return LowRankBlock::zero(m, n);
    }
    let svd = jacobi_svd(tile);
    let threshold = tol.absolute_for(fro);

    // Discarded-tail Frobenius norm must be <= threshold.
    let kmax = svd.s.len();
    let mut tail_sq: Vec<f64> = vec![0.0; kmax + 1];
    for i in (0..kmax).rev() {
        tail_sq[i] = tail_sq[i + 1] + svd.s[i] * svd.s[i];
    }
    let mut rank = kmax;
    for k in 0..=kmax {
        if tail_sq[k].sqrt() <= threshold {
            rank = k;
            break;
        }
    }
    let rank = rank.min(max_rank).min(kmax);

    if rank == 0 {
        return LowRankBlock::zero(m, n);
    }

    // U <- U_k * diag(s_k), V <- V_k.
    let mut u = DenseMatrix::zeros(m, rank);
    let mut v = DenseMatrix::zeros(n, rank);
    for r in 0..rank {
        let s = svd.s[r];
        let src = svd.u.col(r);
        let dst = u.col_mut(r);
        for i in 0..m {
            dst[i] = src[i] * s;
        }
        let dstv = v.col_mut(r);
        for j in 0..n {
            dstv[j] = svd.vt.get(r, j);
        }
    }
    LowRankBlock::new(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tile_la::max_abs_diff;

    fn smooth_kernel_tile(m: usize, n: usize, offset: usize) -> DenseMatrix {
        // A tile of a smooth covariance kernel evaluated away from the diagonal:
        // numerically low rank.
        DenseMatrix::from_fn(m, n, |i, j| {
            let d = (i as f64 - (j + offset) as f64).abs() / 40.0;
            (-d).exp()
        })
    }

    #[test]
    fn compression_error_respects_absolute_tolerance() {
        let tile = smooth_kernel_tile(40, 40, 60);
        for tol in [1e-1, 1e-3, 1e-6, 1e-9] {
            let lr = compress_dense(&tile, CompressionTol::Absolute(tol), usize::MAX);
            let mut diff = lr.to_dense();
            diff.add_scaled(-1.0, &tile);
            let err = diff.frobenius_norm();
            assert!(err <= tol * 1.5 + 1e-13, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn compression_error_respects_relative_tolerance() {
        let tile = smooth_kernel_tile(32, 48, 100);
        let fro = tile.frobenius_norm();
        for tol in [1e-2, 1e-4, 1e-6] {
            let lr = compress_dense(&tile, CompressionTol::Relative(tol), usize::MAX);
            let mut diff = lr.to_dense();
            diff.add_scaled(-1.0, &tile);
            assert!(diff.frobenius_norm() <= tol * fro * 1.5 + 1e-13);
        }
    }

    #[test]
    fn tighter_tolerance_means_higher_rank() {
        let tile = smooth_kernel_tile(50, 50, 80);
        let r1 = compress_dense(&tile, CompressionTol::Absolute(1e-1), usize::MAX).rank();
        let r2 = compress_dense(&tile, CompressionTol::Absolute(1e-4), usize::MAX).rank();
        let r3 = compress_dense(&tile, CompressionTol::Absolute(1e-8), usize::MAX).rank();
        assert!(r1 <= r2 && r2 <= r3, "ranks {r1}, {r2}, {r3} not monotone");
        assert!(r3 < 50, "smooth tile should still be numerically low rank");
    }

    #[test]
    fn max_rank_cap_is_enforced() {
        let tile = smooth_kernel_tile(30, 30, 35);
        let lr = compress_dense(&tile, CompressionTol::Absolute(1e-12), 5);
        assert!(lr.rank() <= 5);
    }

    #[test]
    fn zero_tile_compresses_to_rank_zero() {
        let tile = DenseMatrix::zeros(20, 10);
        let lr = compress_dense(&tile, CompressionTol::Absolute(1e-3), usize::MAX);
        assert_eq!(lr.rank(), 0);
    }

    #[test]
    fn exact_low_rank_matrix_recovers_exact_rank() {
        // Rank-2 tile.
        let a = DenseMatrix::from_fn(20, 1, |i, _| (i as f64 * 0.1).sin());
        let b = DenseMatrix::from_fn(20, 1, |i, _| (i as f64 * 0.07).cos());
        let tile = {
            let mut t = a.matmul_nt(&a);
            t.add_scaled(1.0, &b.matmul_nt(&b));
            t
        };
        let lr = compress_dense(&tile, CompressionTol::Absolute(1e-10), usize::MAX);
        assert_eq!(lr.rank(), 2);
        assert!(max_abs_diff(&lr.to_dense(), &tile) < 1e-9);
    }

    #[test]
    fn loose_tolerance_on_tiny_tile_gives_rank_zero() {
        let tile = DenseMatrix::from_fn(10, 10, |_, _| 1e-8);
        let lr = compress_dense(&tile, CompressionTol::Absolute(1e-3), usize::MAX);
        assert_eq!(lr.rank(), 0);
    }
}
