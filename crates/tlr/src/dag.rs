//! DAG-scheduled TLR Cholesky: the HiCMA-style factorization as a
//! sequential-task-flow graph on the `task-runtime` executor, mirroring
//! [`tile_la::dag`] for the compressed format.
//!
//! Diagonal tiles (dense) and strictly-lower off-diagonal tiles (low-rank)
//! live in two typed [`TileStore`]s sharing one [`HandleRegistry`], so a
//! single graph can declare accesses on both. The task structure is identical
//! to the dense DAG — `POTRF`/`TRSM`/`SYRK`/`GEMM` per panel — with the
//! compressed kernels, and the factor is bitwise identical for every worker
//! count.

use crate::arithmetic::{lr_aa_t_update, lr_lr_t_update};
use crate::cholesky::TlrCholeskyError;
use crate::compress::CompressionTol;
use crate::lowrank::LowRankBlock;
use crate::tlr_matrix::TlrMatrix;
use task_runtime::{
    effective_lookahead, run_taskgraph, AccessMode, DataHandle, HandleRegistry, StreamStats,
    TaskGraph, TaskSink, TaskSpec, TileStore, WorkerPool,
};
use tile_la::dag::{effective_workers, FactorStatus};
use tile_la::kernels::{potrf_in_place, trsm_left_lower_notrans};
use tile_la::{DenseMatrix, TileLayout};

/// Data handles of a TLR matrix: `diag[i]` for the dense diagonal tile,
/// `off[i][j]` (`j < i`) for the low-rank strictly-lower tiles.
pub struct TlrHandles {
    /// Handles of the dense diagonal tiles.
    pub diag: Vec<DataHandle>,
    /// Handles of the strictly-lower low-rank tiles; `off[i]` has length `i`.
    pub off: Vec<Vec<DataHandle>>,
}

impl TlrHandles {
    /// Handle of tile `(i, j)` through the lower structure (`j ≤ i`).
    pub fn tile(&self, i: usize, j: usize) -> DataHandle {
        if i == j {
            self.diag[i]
        } else {
            self.off[i][j]
        }
    }
}

/// Move the tiles of `a` out into typed stores keyed by freshly registered
/// handles. Reverse with [`attach_tlr_tiles`].
pub fn detach_tlr_tiles(
    a: &mut TlrMatrix,
    registry: &mut HandleRegistry,
) -> (TlrHandles, TileStore<DenseMatrix>, TileStore<LowRankBlock>) {
    let layout = a.layout();
    let nt = layout.num_tiles();
    let mut diag_handles = Vec::with_capacity(nt);
    let mut off_handles: Vec<Vec<DataHandle>> = Vec::with_capacity(nt);
    let mut diag_store = TileStore::new();
    let mut off_store = TileStore::new();
    for i in 0..nt {
        let bytes = layout.tile_size(i) * layout.tile_size(i) * std::mem::size_of::<f64>();
        let h = registry.register_sized(format!("D[{i}]"), bytes);
        diag_store.insert(h, a.take_diag(i));
        diag_handles.push(h);
        let mut row = Vec::with_capacity(i);
        for j in 0..i {
            let blk = a.take_off(i, j);
            let bytes = blk.stored_elements() * std::mem::size_of::<f64>();
            let h = registry.register_sized(format!("L[{i},{j}]"), bytes);
            off_store.insert(h, blk);
            row.push(h);
        }
        off_handles.push(row);
    }
    (
        TlrHandles {
            diag: diag_handles,
            off: off_handles,
        },
        diag_store,
        off_store,
    )
}

/// Move the tiles of the typed stores back into `a` (inverse of
/// [`detach_tlr_tiles`]; the graph borrowing the stores must have been
/// dropped).
pub fn attach_tlr_tiles(
    a: &mut TlrMatrix,
    handles: &TlrHandles,
    diag_store: &mut TileStore<DenseMatrix>,
    off_store: &mut TileStore<LowRankBlock>,
) {
    for (i, &h) in handles.diag.iter().enumerate() {
        a.put_diag(i, diag_store.take(h));
    }
    for (i, row) in handles.off.iter().enumerate() {
        for (j, &h) in row.iter().enumerate() {
            a.put_off(i, j, off_store.take(h));
        }
    }
}

/// Submit the TLR Cholesky factorization into any [`TaskSink`] — a
/// materialized [`TaskGraph`] or a lookahead-limited
/// [`StreamSubmitter`](task_runtime::StreamSubmitter) — declaring per-tile
/// accesses. Exposed so `mvn-core` can submit PMVN sweep tasks into the same
/// graph (reading factor tiles while the trailing factorization runs).
#[allow(clippy::too_many_arguments)]
pub fn submit_tlr_factor_tasks<'a, S: TaskSink<'a> + ?Sized>(
    graph: &mut S,
    diag_store: &'a TileStore<DenseMatrix>,
    off_store: &'a TileStore<LowRankBlock>,
    handles: &TlrHandles,
    layout: TileLayout,
    tol: CompressionTol,
    max_rank: usize,
    status: &'a FactorStatus,
) {
    let nt = layout.num_tiles();
    for k in 0..nt {
        let nbk = layout.tile_size(k) as f64;
        let h_kk = handles.diag[k];
        let pivot0 = layout.tile_start(k);
        graph.submit_task(
            TaskSpec::new("potrf")
                .access(h_kk, AccessMode::ReadWrite)
                .cost(nbk * nbk * nbk / 3.0),
            Some(Box::new(move || {
                if status.is_failed() {
                    return;
                }
                let mut d = diag_store.write(h_kk);
                if let Err(local) = potrf_in_place(&mut d) {
                    status.fail(pivot0 + local);
                }
            })),
        );

        for i in (k + 1)..nt {
            let h_ik = handles.off[i][k];
            graph.submit_task(
                TaskSpec::new("trsm")
                    .access(h_kk, AccessMode::Read)
                    .access(h_ik, AccessMode::ReadWrite)
                    .cost(nbk * nbk),
                Some(Box::new(move || {
                    if status.is_failed() {
                        return;
                    }
                    let lkk = diag_store.read(h_kk);
                    let mut blk = off_store.write(h_ik);
                    if blk.rank() > 0 {
                        trsm_left_lower_notrans(&lkk, &mut blk.v);
                    }
                })),
            );
        }

        for i in (k + 1)..nt {
            let h_ik = handles.off[i][k];
            for j in (k + 1)..=i {
                if i == j {
                    let h_ii = handles.diag[i];
                    graph.submit_task(
                        TaskSpec::new("syrk")
                            .access(h_ik, AccessMode::Read)
                            .access(h_ii, AccessMode::ReadWrite)
                            .cost(nbk * nbk),
                        Some(Box::new(move || {
                            if status.is_failed() {
                                return;
                            }
                            let a_ik = off_store.read(h_ik);
                            let mut d = diag_store.write(h_ii);
                            lr_aa_t_update(&mut d, &a_ik);
                        })),
                    );
                } else {
                    let h_jk = handles.off[j][k];
                    let h_ij = handles.off[i][j];
                    graph.submit_task(
                        TaskSpec::new("lr_gemm")
                            .access(h_ik, AccessMode::Read)
                            .access(h_jk, AccessMode::Read)
                            .access(h_ij, AccessMode::ReadWrite)
                            .cost(nbk * nbk),
                        Some(Box::new(move || {
                            if status.is_failed() {
                                return;
                            }
                            let a_ik = off_store.read(h_ik);
                            let a_jk = off_store.read(h_jk);
                            let mut c = off_store.write(h_ij);
                            let updated = lr_lr_t_update(&c, &a_ik, &a_jk, tol, max_rank);
                            *c = updated;
                        })),
                    );
                }
            }
        }
    }
}

/// Detach the tiles of `a`, let `exec` factor them (submitting through a
/// materialized graph or a stream, however it likes), re-attach, and report
/// the recorded pivot failure if any. Shared body of [`potrf_tlr_dag`],
/// [`potrf_tlr_pool`] and [`potrf_tlr_stream`].
fn potrf_tlr_with<E>(a: &mut TlrMatrix, exec: E) -> Result<(), TlrCholeskyError>
where
    E: FnOnce(TlrFactorJob<'_>),
{
    let layout = a.layout();
    let tol = a.tol();
    let max_rank = a.max_rank();
    let mut registry = HandleRegistry::new();
    let (handles, mut diag_store, mut off_store) = detach_tlr_tiles(a, &mut registry);
    let status = FactorStatus::new();
    exec(TlrFactorJob {
        diag_store: &diag_store,
        off_store: &off_store,
        handles: &handles,
        layout,
        tol,
        max_rank,
        status: &status,
    });
    attach_tlr_tiles(a, &handles, &mut diag_store, &mut off_store);
    match status.pivot() {
        Some(pivot) => Err(TlrCholeskyError::NotPositiveDefinite { pivot }),
        None => Ok(()),
    }
}

/// The detached-tile state [`potrf_tlr_with`] hands its execution closure
/// (the TLR factorization needs both stores plus the compression
/// parameters, so the dense crate's four-argument closure shape does not
/// fit).
struct TlrFactorJob<'j> {
    diag_store: &'j TileStore<DenseMatrix>,
    off_store: &'j TileStore<LowRankBlock>,
    handles: &'j TlrHandles,
    layout: TileLayout,
    tol: CompressionTol,
    max_rank: usize,
    status: &'j FactorStatus,
}

impl TlrFactorJob<'_> {
    /// Submit this factorization into `sink` (shared by the materialized and
    /// streaming entry points, so the two task sequences are the same
    /// sequence).
    fn submit_into<'a, S: TaskSink<'a> + ?Sized>(&'a self, sink: &mut S) {
        submit_tlr_factor_tasks(
            sink,
            self.diag_store,
            self.off_store,
            self.handles,
            self.layout,
            self.tol,
            self.max_rank,
            self.status,
        );
    }
}

/// In-place TLR Cholesky, executed as a dependency-inferred task graph on
/// `workers` threads (resolved by [`effective_workers`]). The factor is
/// bitwise identical for every worker count. Spins up a throwaway thread pool
/// per call; call sites factoring many matrices should hold a [`WorkerPool`]
/// and use [`potrf_tlr_pool`] instead.
pub fn potrf_tlr_dag(a: &mut TlrMatrix, workers: usize) -> Result<(), TlrCholeskyError> {
    potrf_tlr_with(a, |job| {
        let mut graph = TaskGraph::new();
        job.submit_into(&mut graph);
        run_taskgraph(&mut graph, effective_workers(workers));
    })
}

/// In-place TLR Cholesky on a caller-owned persistent [`WorkerPool`] (same
/// task graph — and bitwise-identical factor — as [`potrf_tlr_dag`], without
/// the per-call pool setup).
pub fn potrf_tlr_pool(a: &mut TlrMatrix, pool: &WorkerPool) -> Result<(), TlrCholeskyError> {
    potrf_tlr_with(a, |job| {
        let mut graph = TaskGraph::new();
        job.submit_into(&mut graph);
        pool.run(&mut graph);
    })
}

/// In-place TLR Cholesky with **streaming, lookahead-limited submission**:
/// the TLR counterpart of [`tile_la::potrf_tiled_stream`]. Tasks start on
/// the pool as they are submitted; at most `lookahead` tasks are resident at
/// once (`0` = the default window, see [`effective_lookahead`]). The factor
/// is bitwise identical to [`potrf_tlr_dag`] / [`potrf_tlr_pool`] for every
/// worker count and window size; on success returns the session's
/// [`StreamStats`].
///
/// [`tile_la::potrf_tiled_stream`]: tile_la::dag::potrf_tiled_stream
pub fn potrf_tlr_stream(
    a: &mut TlrMatrix,
    pool: &WorkerPool,
    lookahead: usize,
) -> Result<StreamStats, TlrCholeskyError> {
    let mut stats = None;
    potrf_tlr_with(a, |job| {
        let ((), s) = pool.stream(effective_lookahead(lookahead, pool.workers()), |sink| {
            job.submit_into(sink);
        });
        stats = Some(s);
    })?;
    Ok(stats.expect("the factorization closure always runs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::potrf_tlr_forkjoin;
    use tile_la::max_abs_diff;

    fn kernel(range: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs() / 60.0;
            (-d / range).exp() + if i == j { 1e-6 } else { 0.0 }
        }
    }

    #[test]
    fn dag_tlr_factor_matches_forkjoin_bitwise() {
        let n = 96;
        let f = kernel(0.5);
        let mut a = TlrMatrix::from_fn(n, 24, CompressionTol::Absolute(1e-8), usize::MAX, &f);
        let mut b = a.clone();
        potrf_tlr_dag(&mut a, 4).unwrap();
        potrf_tlr_forkjoin(&mut b, usize::MAX).unwrap();
        let da = a.to_dense_lower();
        let db = b.to_dense_lower();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    da.get(i, j).to_bits() == db.get(i, j).to_bits(),
                    "entry ({i},{j}) differs bitwise"
                );
            }
        }
    }

    #[test]
    fn pool_tlr_factor_matches_one_shot_bitwise() {
        let n = 96;
        let f = kernel(0.5);
        let pool = WorkerPool::new(4);
        let base = TlrMatrix::from_fn(n, 24, CompressionTol::Absolute(1e-8), usize::MAX, &f);
        let mut via_pool = base.clone();
        let mut one_shot = base.clone();
        potrf_tlr_pool(&mut via_pool, &pool).unwrap();
        potrf_tlr_dag(&mut one_shot, 4).unwrap();
        assert!(max_abs_diff(&via_pool.to_dense_lower(), &one_shot.to_dense_lower()) == 0.0);
        assert_eq!(pool.stats().graphs_run, 1);
    }

    #[test]
    fn dag_tlr_is_deterministic_across_worker_counts() {
        let n = 80;
        let f = kernel(0.7);
        let base = TlrMatrix::from_fn(n, 20, CompressionTol::Absolute(1e-6), 10, &f);
        let mut reference = base.clone();
        potrf_tlr_dag(&mut reference, 1).unwrap();
        let ref_dense = reference.to_dense_lower();
        for workers in [2usize, 8] {
            let mut a = base.clone();
            potrf_tlr_dag(&mut a, workers).unwrap();
            assert!(
                max_abs_diff(&a.to_dense_lower(), &ref_dense) == 0.0,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn stream_tlr_factor_matches_materialized_bitwise_and_bounds_the_window() {
        // Streaming acceptance criterion, TLR side: bitwise-identical factor
        // for 1/2/4 workers and several windows, peak in-flight bounded.
        let n = 96;
        let f = kernel(0.5);
        let base = TlrMatrix::from_fn(n, 24, CompressionTol::Absolute(1e-8), usize::MAX, &f);
        let mut reference = base.clone();
        potrf_tlr_dag(&mut reference, 2).unwrap();
        let ref_dense = reference.to_dense_lower();
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            for lookahead in [1usize, 3, 16] {
                let mut a = base.clone();
                let stats = potrf_tlr_stream(&mut a, &pool, lookahead).unwrap();
                assert!(
                    stats.peak_in_flight <= lookahead,
                    "workers={workers} lookahead={lookahead}: peak {}",
                    stats.peak_in_flight
                );
                assert!(
                    max_abs_diff(&a.to_dense_lower(), &ref_dense) == 0.0,
                    "workers={workers} lookahead={lookahead}"
                );
            }
        }
    }

    #[test]
    fn stream_tlr_rejects_indefinite_matrix() {
        let pool = WorkerPool::new(2);
        let f = |i: usize, j: usize| if i == j { -1.0 } else { 0.0 };
        let mut a = TlrMatrix::from_fn(30, 10, CompressionTol::Absolute(1e-6), usize::MAX, f);
        let err = potrf_tlr_stream(&mut a, &pool, 4).unwrap_err();
        assert!(matches!(
            err,
            TlrCholeskyError::NotPositiveDefinite { pivot: 0 }
        ));
    }

    #[test]
    fn dag_tlr_rejects_indefinite_matrix() {
        let f = |i: usize, j: usize| if i == j { -1.0 } else { 0.0 };
        let mut a = TlrMatrix::from_fn(30, 10, CompressionTol::Absolute(1e-6), usize::MAX, f);
        let err = potrf_tlr_dag(&mut a, 4).unwrap_err();
        assert!(matches!(
            err,
            TlrCholeskyError::NotPositiveDefinite { pivot: 0 }
        ));
    }
}
