//! # tlr — Tile Low-Rank matrix approximation
//!
//! A pure-Rust substitute for the HiCMA library used by the paper: symmetric
//! matrices are stored as dense diagonal tiles plus off-diagonal tiles
//! compressed into truncated-SVD factors `U·Vᵀ`, and the Cholesky factorization
//! is carried out directly in that compressed format.
//!
//! The crate provides:
//!
//! * [`LowRankBlock`] — a single compressed tile with its `U`, `V` factors,
//! * [`CompressionTol`] and [`compress_dense`] —
//!   truncated-SVD compression at an absolute or relative Frobenius tolerance,
//! * [`arithmetic`] — the low-rank kernels used by the factorization
//!   (`LR×dense`, `LR×LRᵀ`, low-rank additions with QR-based recompression),
//! * [`TlrMatrix`] — the tile-low-rank symmetric matrix (diagonal dense, lower
//!   off-diagonal low-rank),
//! * [`potrf_tlr`] — the TLR Cholesky factorization,
//! * [`RankStats`] — per-tile rank maps and summaries
//!   (the paper's Figure 5).

pub mod arithmetic;
pub mod cholesky;
pub mod compress;
pub mod dag;
pub mod lowrank;
pub mod rank_stats;
pub mod tlr_matrix;

pub use arithmetic::{
    lr_aa_t_update, lr_add_recompress, lr_gemm_panel, lr_gemm_panel_t, lr_lr_t_update,
};
pub use cholesky::{potrf_tlr, potrf_tlr_forkjoin, TlrCholeskyError};
pub use compress::{compress_dense, CompressionTol};
pub use dag::{potrf_tlr_dag, potrf_tlr_pool, potrf_tlr_stream, TlrHandles};
pub use lowrank::LowRankBlock;
pub use rank_stats::RankStats;
pub use tlr_matrix::TlrMatrix;

#[cfg(test)]
mod tests {
    use super::*;
    use tile_la::{max_abs_diff, DenseMatrix, SymTileMatrix};

    fn exp_kernel(range: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs() / 50.0;
            (-d / range).exp() + if i == j { 1e-8 } else { 0.0 }
        }
    }

    #[test]
    fn end_to_end_tlr_cholesky_close_to_dense_cholesky() {
        let n = 120;
        let nb = 30;
        let f = exp_kernel(0.3);
        let tol = CompressionTol::Absolute(1e-9);

        let mut tlr = TlrMatrix::from_fn(n, nb, tol, 64, &f);
        potrf_tlr(&mut tlr, 1).unwrap();
        let l_tlr = tlr.to_dense_lower();

        let mut dense = SymTileMatrix::from_fn(n, nb, &f);
        tile_la::potrf_tiled(&mut dense, 1).unwrap();
        let l_dense = dense.to_dense_lower();

        assert!(max_abs_diff(&l_tlr, &l_dense) < 1e-5);

        // And the reconstruction L L^T matches the original covariance closely.
        let rec = l_tlr.matmul_nt(&l_tlr);
        let orig = DenseMatrix::from_fn(n, n, &f);
        assert!(max_abs_diff(&rec, &orig) < 1e-6);
    }
}
