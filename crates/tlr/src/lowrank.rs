//! A single low-rank tile `A ≈ U·Vᵀ`.

use tile_la::DenseMatrix;

/// A rank-`k` representation of an `m × n` tile: `U` is `m × k`, `V` is `n × k`
/// and the tile value is `U·Vᵀ`.
///
/// Rank 0 (empty factors) is a valid representation of the zero tile.
#[derive(Debug, Clone)]
pub struct LowRankBlock {
    /// Left factor, `m × k`.
    pub u: DenseMatrix,
    /// Right factor, `n × k`.
    pub v: DenseMatrix,
}

impl LowRankBlock {
    /// The zero tile of shape `m × n` (rank 0).
    pub fn zero(m: usize, n: usize) -> Self {
        Self {
            u: DenseMatrix::zeros(m, 0),
            v: DenseMatrix::zeros(n, 0),
        }
    }

    /// Construct from explicit factors.
    pub fn new(u: DenseMatrix, v: DenseMatrix) -> Self {
        assert_eq!(
            u.ncols(),
            v.ncols(),
            "low-rank factors must share the rank dimension"
        );
        Self { u, v }
    }

    /// Number of rows of the represented tile.
    pub fn nrows(&self) -> usize {
        self.u.nrows()
    }

    /// Number of columns of the represented tile.
    pub fn ncols(&self) -> usize {
        self.v.nrows()
    }

    /// Current rank (number of columns of `U`/`V`).
    pub fn rank(&self) -> usize {
        self.u.ncols()
    }

    /// Number of stored doubles (memory footprint measure).
    pub fn stored_elements(&self) -> usize {
        self.u.nrows() * self.u.ncols() + self.v.nrows() * self.v.ncols()
    }

    /// Expand to a dense tile `U·Vᵀ`.
    pub fn to_dense(&self) -> DenseMatrix {
        if self.rank() == 0 {
            return DenseMatrix::zeros(self.nrows(), self.ncols());
        }
        self.u.matmul_nt(&self.v)
    }

    /// `y ← U·(Vᵀ·x)` — matrix–vector product with the represented tile.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols());
        if self.rank() == 0 {
            return vec![0.0; self.nrows()];
        }
        // w = V^T x  (k)
        let k = self.rank();
        let mut w = vec![0.0; k];
        for r in 0..k {
            let col = self.v.col(r);
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                s += col[i] * xi;
            }
            w[r] = s;
        }
        // y = U w
        self.u.matvec(&w)
    }

    /// Frobenius norm of the represented tile, computed from the factors
    /// without forming the dense product: `‖UVᵀ‖_F² = trace((UᵀU)(VᵀV))`.
    pub fn frobenius_norm(&self) -> f64 {
        if self.rank() == 0 {
            return 0.0;
        }
        let utu = self.u.matmul_tn(&self.u);
        let vtv = self.v.matmul_tn(&self.v);
        let mut tr = 0.0;
        let k = self.rank();
        for i in 0..k {
            for j in 0..k {
                tr += utu.get(i, j) * vtv.get(j, i);
            }
        }
        tr.max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tile_la::max_abs_diff;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut s = seed;
        DenseMatrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn zero_block_behaves_like_zero_matrix() {
        let z = LowRankBlock::zero(4, 6);
        assert_eq!(z.rank(), 0);
        assert_eq!(z.nrows(), 4);
        assert_eq!(z.ncols(), 6);
        assert_eq!(z.to_dense(), DenseMatrix::zeros(4, 6));
        assert_eq!(z.matvec(&[1.0; 6]), vec![0.0; 4]);
        assert_eq!(z.frobenius_norm(), 0.0);
    }

    #[test]
    fn to_dense_matches_factor_product() {
        let u = rand_matrix(5, 2, 1);
        let v = rand_matrix(7, 2, 2);
        let b = LowRankBlock::new(u.clone(), v.clone());
        assert_eq!(b.rank(), 2);
        assert!(max_abs_diff(&b.to_dense(), &u.matmul_nt(&v)) < 1e-15);
    }

    #[test]
    fn matvec_matches_dense_matvec() {
        let u = rand_matrix(6, 3, 3);
        let v = rand_matrix(4, 3, 4);
        let b = LowRankBlock::new(u, v);
        let x = vec![0.3, -1.2, 0.7, 2.0];
        let got = b.matvec(&x);
        let want = b.to_dense().matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_norm_from_factors_matches_dense() {
        let u = rand_matrix(8, 3, 5);
        let v = rand_matrix(5, 3, 6);
        let b = LowRankBlock::new(u, v);
        let want = b.to_dense().frobenius_norm();
        assert!((b.frobenius_norm() - want).abs() < 1e-10);
    }

    #[test]
    fn stored_elements_counts_both_factors() {
        let b = LowRankBlock::new(DenseMatrix::zeros(10, 2), DenseMatrix::zeros(20, 2));
        assert_eq!(b.stored_elements(), 10 * 2 + 20 * 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_rank_dimensions_panic() {
        let _ = LowRankBlock::new(DenseMatrix::zeros(3, 2), DenseMatrix::zeros(3, 3));
    }
}
