//! The Tile Low-Rank symmetric matrix: dense diagonal tiles, low-rank lower
//! off-diagonal tiles.

use crate::compress::{compress_dense, CompressionTol};
use crate::lowrank::LowRankBlock;
use rayon::prelude::*;
use tile_la::kernels::{gemm_nn, trsm_left_lower_notrans};
use tile_la::{DenseMatrix, SymTileMatrix, TileLayout};

/// A symmetric `n × n` matrix in Tile Low-Rank (TLR) format.
///
/// Diagonal tiles are stored dense (they carry the full energy of the matrix
/// and are never admissible for compression); strictly-lower off-diagonal
/// tiles are stored as truncated-SVD factors at the requested tolerance.
#[derive(Debug, Clone)]
pub struct TlrMatrix {
    layout: TileLayout,
    tol: CompressionTol,
    max_rank: usize,
    diag: Vec<DenseMatrix>,
    /// Strictly-lower tiles `(i, j)` with `j < i` at index `i·(i−1)/2 + j`.
    off: Vec<LowRankBlock>,
}

impl TlrMatrix {
    fn off_index(i: usize, j: usize) -> usize {
        debug_assert!(j < i);
        i * (i - 1) / 2 + j
    }

    /// Build a TLR matrix from a symmetric element function, compressing every
    /// off-diagonal tile at the given tolerance (tiles are generated and
    /// compressed in parallel).
    pub fn from_fn(
        n: usize,
        nb: usize,
        tol: CompressionTol,
        max_rank: usize,
        f: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Self {
        let layout = TileLayout::new(n, nb);
        let nt = layout.num_tiles();

        let diag: Vec<DenseMatrix> = (0..nt)
            .into_par_iter()
            .map(|t| {
                let start = layout.tile_start(t);
                DenseMatrix::from_fn(layout.tile_size(t), layout.tile_size(t), |a, b| {
                    f(start + a, start + b)
                })
            })
            .collect();

        let coords: Vec<(usize, usize)> =
            (1..nt).flat_map(|i| (0..i).map(move |j| (i, j))).collect();
        let off: Vec<LowRankBlock> = coords
            .par_iter()
            .map(|&(i, j)| {
                let ri = layout.tile_start(i);
                let rj = layout.tile_start(j);
                let dense =
                    DenseMatrix::from_fn(layout.tile_size(i), layout.tile_size(j), |a, b| {
                        f(ri + a, rj + b)
                    });
                compress_dense(&dense, tol, max_rank)
            })
            .collect();

        Self {
            layout,
            tol,
            max_rank,
            diag,
            off,
        }
    }

    /// Build from an existing dense symmetric tile matrix (compressing its
    /// off-diagonal tiles).
    pub fn from_sym(a: &SymTileMatrix, tol: CompressionTol, max_rank: usize) -> Self {
        Self::from_fn(a.n(), a.nb(), tol, max_rank, |i, j| a.get(i, j))
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.layout.nb()
    }

    /// Number of tile rows/columns.
    pub fn num_tiles(&self) -> usize {
        self.layout.num_tiles()
    }

    /// The tiling layout.
    pub fn layout(&self) -> TileLayout {
        self.layout
    }

    /// The compression tolerance this matrix was built with.
    pub fn tol(&self) -> CompressionTol {
        self.tol
    }

    /// The maximum admissible rank.
    pub fn max_rank(&self) -> usize {
        self.max_rank
    }

    /// Borrow a diagonal tile.
    pub fn diag_tile(&self, i: usize) -> &DenseMatrix {
        &self.diag[i]
    }

    /// Mutably borrow a diagonal tile.
    pub fn diag_tile_mut(&mut self, i: usize) -> &mut DenseMatrix {
        &mut self.diag[i]
    }

    /// Borrow a strictly-lower off-diagonal tile (`j < i`).
    pub fn off_tile(&self, i: usize, j: usize) -> &LowRankBlock {
        assert!(j < i, "off_tile requires j < i (got ({i},{j}))");
        &self.off[Self::off_index(i, j)]
    }

    /// Mutably borrow a strictly-lower off-diagonal tile (`j < i`).
    pub fn off_tile_mut(&mut self, i: usize, j: usize) -> &mut LowRankBlock {
        assert!(j < i, "off_tile requires j < i (got ({i},{j}))");
        &mut self.off[Self::off_index(i, j)]
    }

    pub(crate) fn take_off(&mut self, i: usize, j: usize) -> LowRankBlock {
        std::mem::replace(
            &mut self.off[Self::off_index(i, j)],
            LowRankBlock::zero(1, 1),
        )
    }

    pub(crate) fn put_off(&mut self, i: usize, j: usize, b: LowRankBlock) {
        self.off[Self::off_index(i, j)] = b;
    }

    pub(crate) fn take_diag(&mut self, i: usize) -> DenseMatrix {
        std::mem::replace(&mut self.diag[i], DenseMatrix::zeros(1, 1))
    }

    pub(crate) fn put_diag(&mut self, i: usize, d: DenseMatrix) {
        self.diag[i] = d;
    }

    /// Element access through the symmetric/lower structure (any `(i, j)`).
    ///
    /// Off-diagonal elements require expanding a factor product row, so this is
    /// intended for tests and small reports, not inner loops.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let ti = self.layout.tile_of(i);
        let tj = self.layout.tile_of(j);
        let oi = self.layout.offset_in_tile(i);
        let oj = self.layout.offset_in_tile(j);
        if ti == tj {
            self.diag[ti].get(oi, oj)
        } else {
            let b = self.off_tile(ti, tj);
            // (U V^T)[oi, oj]
            let mut s = 0.0;
            for r in 0..b.rank() {
                s += b.u.get(oi, r) * b.v.get(oj, r);
            }
            s
        }
    }

    /// Expand only the lower triangle to a dense matrix (the natural view of a
    /// TLR Cholesky factor).
    pub fn to_dense_lower(&self) -> DenseMatrix {
        let n = self.n();
        let mut out = DenseMatrix::zeros(n, n);
        let nt = self.num_tiles();
        for ti in 0..nt {
            let ri = self.layout.tile_start(ti);
            // Diagonal tile: lower part only.
            let d = &self.diag[ti];
            for j in 0..d.ncols() {
                for i in j..d.nrows() {
                    out.set(ri + i, ri + j, d.get(i, j));
                }
            }
            for tj in 0..ti {
                let rj = self.layout.tile_start(tj);
                let dense = self.off_tile(ti, tj).to_dense();
                out.copy_block_from(&dense, 0, 0, ri, rj, dense.nrows(), dense.ncols());
            }
        }
        out
    }

    /// Expand to the full dense symmetric matrix (before factorization).
    pub fn to_dense_sym(&self) -> DenseMatrix {
        let n = self.n();
        DenseMatrix::from_fn(n, n, |i, j| self.get(i, j))
    }

    /// Total number of stored doubles (dense diagonal + factor storage).
    pub fn stored_elements(&self) -> usize {
        let d: usize = self.diag.iter().map(|t| t.nrows() * t.ncols()).sum();
        let o: usize = self.off.iter().map(|b| b.stored_elements()).sum();
        d + o
    }

    /// Storage relative to an uncompressed lower-triangular tile layout
    /// (1.0 = no savings; smaller is better).
    pub fn compression_ratio(&self) -> f64 {
        let nt = self.num_tiles();
        let mut dense_elems = 0usize;
        for i in 0..nt {
            for j in 0..=i {
                dense_elems += self.layout.tile_size(i) * self.layout.tile_size(j);
            }
        }
        self.stored_elements() as f64 / dense_elems as f64
    }

    /// Forward substitution `L·X = B` with this matrix holding a TLR Cholesky
    /// factor; `B` (an `n × m` panel) is overwritten with the solution.
    pub fn solve_lower_panel(&self, b: &mut DenseMatrix) {
        assert_eq!(b.nrows(), self.n());
        let nt = self.num_tiles();
        for ti in 0..nt {
            let ri = self.layout.tile_start(ti);
            let rows_i = self.layout.tile_size(ti);
            let mut block_i = b.submatrix(ri, 0, rows_i, b.ncols());
            for tj in 0..ti {
                let rj = self.layout.tile_start(tj);
                let rows_j = self.layout.tile_size(tj);
                let block_j = b.submatrix(rj, 0, rows_j, b.ncols());
                crate::arithmetic::lr_gemm_panel(
                    -1.0,
                    self.off_tile(ti, tj),
                    &block_j,
                    1.0,
                    &mut block_i,
                );
            }
            trsm_left_lower_notrans(&self.diag[ti], &mut block_i);
            b.copy_block_from(&block_i, 0, 0, ri, 0, rows_i, b.ncols());
        }
    }

    /// `Y = L·X` with this matrix holding a TLR Cholesky factor (used to sample
    /// Gaussian fields from the compressed factor).
    pub fn multiply_lower_panel(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.nrows(), self.n());
        let nt = self.num_tiles();
        let mut y = DenseMatrix::zeros(x.nrows(), x.ncols());
        for ti in 0..nt {
            let ri = self.layout.tile_start(ti);
            let rows_i = self.layout.tile_size(ti);
            let mut acc = DenseMatrix::zeros(rows_i, x.ncols());
            // Diagonal tile contributes its lower triangle only (it holds L_ii).
            let xd = x.submatrix(ri, 0, rows_i, x.ncols());
            let d = &self.diag[ti];
            let lower =
                DenseMatrix::from_fn(
                    d.nrows(),
                    d.ncols(),
                    |a, b| {
                        if a >= b {
                            d.get(a, b)
                        } else {
                            0.0
                        }
                    },
                );
            gemm_nn(1.0, &lower, &xd, 1.0, &mut acc);
            for tj in 0..ti {
                let rj = self.layout.tile_start(tj);
                let rows_j = self.layout.tile_size(tj);
                let xb = x.submatrix(rj, 0, rows_j, x.ncols());
                crate::arithmetic::lr_gemm_panel(1.0, self.off_tile(ti, tj), &xb, 1.0, &mut acc);
            }
            y.copy_block_from(&acc, 0, 0, ri, 0, rows_i, x.ncols());
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tile_la::max_abs_diff;

    fn kernel(i: usize, j: usize) -> f64 {
        let d = (i as f64 - j as f64).abs() / 30.0;
        (-d).exp()
    }

    #[test]
    fn construction_approximates_the_dense_matrix() {
        let n = 90;
        let tlr = TlrMatrix::from_fn(n, 30, CompressionTol::Absolute(1e-8), usize::MAX, kernel);
        let dense = DenseMatrix::from_fn(n, n, kernel);
        assert!(max_abs_diff(&tlr.to_dense_sym(), &dense) < 1e-6);
    }

    #[test]
    fn diagonal_tiles_are_exact() {
        let tlr = TlrMatrix::from_fn(60, 20, CompressionTol::Absolute(1e-2), usize::MAX, kernel);
        for t in 0..tlr.num_tiles() {
            let d = tlr.diag_tile(t);
            for a in 0..d.nrows() {
                for b in 0..d.ncols() {
                    assert_eq!(d.get(a, b), kernel(20 * t + a, 20 * t + b));
                }
            }
        }
    }

    #[test]
    fn looser_tolerance_stores_less() {
        let loose = TlrMatrix::from_fn(120, 30, CompressionTol::Absolute(1e-1), usize::MAX, kernel);
        let tight = TlrMatrix::from_fn(120, 30, CompressionTol::Absolute(1e-9), usize::MAX, kernel);
        assert!(loose.stored_elements() <= tight.stored_elements());
        assert!(loose.compression_ratio() <= 1.0);
    }

    #[test]
    fn from_sym_agrees_with_from_fn() {
        let sym = SymTileMatrix::from_fn(48, 16, kernel);
        let a = TlrMatrix::from_sym(&sym, CompressionTol::Absolute(1e-9), usize::MAX);
        let b = TlrMatrix::from_fn(48, 16, CompressionTol::Absolute(1e-9), usize::MAX, kernel);
        assert!(max_abs_diff(&a.to_dense_sym(), &b.to_dense_sym()) < 1e-9);
    }

    #[test]
    fn element_access_matches_kernel_within_tolerance() {
        let tlr = TlrMatrix::from_fn(50, 10, CompressionTol::Absolute(1e-10), usize::MAX, kernel);
        for &(i, j) in &[(0usize, 0usize), (3, 47), (25, 10), (49, 49), (12, 30)] {
            assert!((tlr.get(i, j) - kernel(i.max(j), i.min(j))).abs() < 1e-8);
        }
    }

    #[test]
    fn ragged_edge_dimensions() {
        let tlr = TlrMatrix::from_fn(55, 16, CompressionTol::Absolute(1e-6), usize::MAX, kernel);
        assert_eq!(tlr.num_tiles(), 4);
        assert_eq!(tlr.diag_tile(3).nrows(), 7);
        assert_eq!(tlr.off_tile(3, 0).nrows(), 7);
        assert_eq!(tlr.off_tile(3, 0).ncols(), 16);
    }

    #[test]
    #[should_panic]
    fn off_tile_requires_strictly_lower() {
        let tlr = TlrMatrix::from_fn(20, 10, CompressionTol::Absolute(1e-3), usize::MAX, kernel);
        let _ = tlr.off_tile(0, 0);
    }
}
