//! Line-delimited JSON framing: one compact JSON document per `\n`-terminated
//! line. The framing is trivial on purpose — it keeps both wire protocols
//! greppable with `nc`, and because the [`json`](crate::json) renderer never
//! emits a raw newline (strings escape control characters), a document is
//! always exactly one line.
//!
//! Reads are **defensive**: a frame torn at EOF (bytes with no terminating
//! newline), a frame larger than the caller's byte cap, or a line that is
//! not valid JSON all surface as a typed [`FrameError`] instead of a panic,
//! a hang, or an unbounded buffer. A crashed peer tears its last frame at an
//! arbitrary byte — mid-`f64`, mid-string — and the distributed runtime's
//! recovery path needs to tell that apart from a clean close (`Ok(None)`).

use crate::json::Json;
use std::io::{self, BufRead, Write};

/// Default per-frame byte cap for [`read_msg`]: generous enough for a setup
/// message carrying a large rank's worth of tile payloads, small enough that
/// a corrupt stream that never sends a newline cannot exhaust memory.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Everything that can go wrong reading one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream ended mid-frame: `partial` bytes arrived without a
    /// terminating newline (a crashed or killed peer tears its last frame).
    Truncated {
        /// Bytes received before the tear.
        partial: usize,
    },
    /// The frame exceeded the byte cap before a newline appeared.
    Oversized {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// The line was complete but not a valid JSON document (includes
    /// invalid UTF-8).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::Truncated { partial } => {
                write!(f, "frame torn at EOF after {partial} bytes (no newline)")
            }
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte cap")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(e) => e,
            FrameError::Truncated { .. } => io::Error::new(io::ErrorKind::UnexpectedEof, e),
            FrameError::Oversized { .. } => io::Error::new(io::ErrorKind::InvalidData, e),
            FrameError::Malformed(_) => io::Error::new(io::ErrorKind::InvalidData, e),
        }
    }
}

/// Write one JSON document as a single line and flush it.
pub fn write_msg<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    writeln!(w, "{msg}")?;
    w.flush()
}

/// Read one line and parse it as a JSON document, with a per-frame byte cap.
///
/// Returns `Ok(None)` on a clean EOF (the peer closed the connection
/// *between* messages). A tear mid-frame, an over-cap frame, and a malformed
/// document each map to their [`FrameError`] variant; the reader should
/// treat all three as a broken connection.
pub fn read_msg_bounded<R: BufRead>(r: &mut R, max: usize) -> Result<Option<Json>, FrameError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf().map_err(FrameError::Io)?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(FrameError::Truncated { partial: buf.len() })
            };
        }
        let (line_bytes, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        if buf.len() + line_bytes > max {
            // Don't consume past the cap: leave the stream as-is; the caller
            // is expected to drop the connection.
            return Err(FrameError::Oversized { limit: max });
        }
        buf.extend_from_slice(&chunk[..line_bytes]);
        r.consume(line_bytes);
        if done {
            break;
        }
    }
    let text = std::str::from_utf8(&buf)
        .map_err(|e| FrameError::Malformed(format!("invalid UTF-8: {e}")))?;
    Json::parse(text.trim_end_matches(['\r', '\n']))
        .map(Some)
        .map_err(FrameError::Malformed)
}

/// Read one line and parse it as a JSON document (default
/// [`MAX_FRAME_BYTES`] cap).
///
/// Returns `Ok(None)` on a clean EOF; torn/oversized/malformed frames map
/// to `io::Error` with kinds `UnexpectedEof`/`InvalidData` (see
/// [`FrameError`]'s `From<FrameError> for io::Error`).
pub fn read_msg<R: BufRead>(r: &mut R) -> io::Result<Option<Json>> {
    read_msg_bounded(r, MAX_FRAME_BYTES).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    #[test]
    fn roundtrips_documents_over_a_byte_pipe() {
        let doc = Json::parse(r#"{"get":[3,1],"x":[0.1,-0.0,1e-300,null]}"#).unwrap();
        let mut buf = Vec::new();
        write_msg(&mut buf, &doc).unwrap();
        write_msg(&mut buf, &Json::Null).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_msg(&mut r).unwrap(), Some(doc));
        assert_eq!(read_msg(&mut r).unwrap(), Some(Json::Null));
        assert_eq!(read_msg(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn f64_payloads_survive_framing_bitwise() {
        let xs = [0.1, -1.0 / 3.0, 1e-300, f64::MIN_POSITIVE, -0.0];
        let doc = Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        let mut buf = Vec::new();
        write_msg(&mut buf, &doc).unwrap();
        let back = read_msg(&mut BufReader::new(&buf[..])).unwrap().unwrap();
        for (x, v) in xs.iter().zip(back.as_arr().unwrap()) {
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn malformed_lines_surface_as_invalid_data() {
        let mut r = BufReader::new(&b"{\"unterminated\n"[..]);
        let err = read_msg(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut r = BufReader::new(&b"{\"unterminated\n"[..]);
        assert!(matches!(
            read_msg_bounded(&mut r, MAX_FRAME_BYTES).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    /// A reader that hands out its bytes in fixed-size slivers, so one frame
    /// spans many `fill_buf` calls — the shape of a peer whose writes are
    /// split across packets.
    struct Slivers<'a>(&'a [u8], usize);
    impl Read for Slivers<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = self.0.len().min(self.1).min(out.len());
            out[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn split_writes_reassemble_into_one_frame() {
        let doc = Json::parse(r#"{"tile":{"r":2,"c":2,"d":[0.1,0.2,0.3,0.4]}}"#).unwrap();
        let mut bytes = Vec::new();
        write_msg(&mut bytes, &doc).unwrap();
        write_msg(&mut bytes, &Json::Num(7.0)).unwrap();
        for sliver in [1usize, 2, 3, 7] {
            let mut r = BufReader::with_capacity(sliver, Slivers(&bytes, sliver));
            assert_eq!(
                read_msg(&mut r).unwrap(),
                Some(doc.clone()),
                "sliver {sliver}"
            );
            assert_eq!(read_msg(&mut r).unwrap(), Some(Json::Num(7.0)));
            assert_eq!(read_msg(&mut r).unwrap(), None);
        }
    }

    #[test]
    fn torn_frames_are_truncated_not_parsed() {
        // A frame torn mid-f64 at EOF: the undamaged prefix would parse as a
        // *different* number — it must surface as Truncated, never as data.
        let full = b"[1.2546789,3.5]\n";
        for cut in 1..full.len() - 1 {
            let mut r = BufReader::new(&full[..cut]);
            match read_msg_bounded(&mut r, MAX_FRAME_BYTES).unwrap_err() {
                FrameError::Truncated { partial } => assert_eq!(partial, cut),
                other => panic!("cut at {cut}: expected Truncated, got {other}"),
            }
        }
        // And through the io::Error wrapper it is an UnexpectedEof.
        let mut r = BufReader::new(&full[..4]);
        assert_eq!(
            read_msg(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn torn_frames_reassembled_from_slivers_still_truncate() {
        let full = b"{\"d\":[1.25,2.5,9.75]}\n";
        let torn = &full[..full.len() - 3];
        let mut r = BufReader::with_capacity(2, Slivers(torn, 2));
        assert!(matches!(
            read_msg_bounded(&mut r, MAX_FRAME_BYTES).unwrap_err(),
            FrameError::Truncated { .. }
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_buffering_them() {
        let mut bytes = Vec::new();
        let big = Json::Arr((0..100).map(|i| Json::Num(i as f64)).collect());
        write_msg(&mut bytes, &big).unwrap();
        let mut r = BufReader::new(&bytes[..]);
        match read_msg_bounded(&mut r, 16).unwrap_err() {
            FrameError::Oversized { limit } => assert_eq!(limit, 16),
            other => panic!("expected Oversized, got {other}"),
        }
        // A frame exactly at the cap (payload + newline) still goes through.
        let doc = Json::parse("[1,2]").unwrap();
        let mut bytes = Vec::new();
        write_msg(&mut bytes, &doc).unwrap();
        let mut r = BufReader::new(&bytes[..]);
        assert_eq!(read_msg_bounded(&mut r, bytes.len()).unwrap(), Some(doc));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut r = BufReader::new(&b"\xff\xfe{}\n"[..]);
        assert!(matches!(
            read_msg_bounded(&mut r, MAX_FRAME_BYTES).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }
}
