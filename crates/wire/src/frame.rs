//! Line-delimited JSON framing: one compact JSON document per `\n`-terminated
//! line. The framing is trivial on purpose — it keeps both wire protocols
//! greppable with `nc`, and because the [`json`](crate::json) renderer never
//! emits a raw newline (strings escape control characters), a document is
//! always exactly one line.

use crate::json::Json;
use std::io::{self, BufRead, Write};

/// Write one JSON document as a single line and flush it.
pub fn write_msg<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    writeln!(w, "{msg}")?;
    w.flush()
}

/// Read one line and parse it as a JSON document.
///
/// Returns `Ok(None)` on a clean EOF (the peer closed the connection between
/// messages); a malformed document maps to [`io::ErrorKind::InvalidData`] so
/// transport errors and protocol errors surface through one `Result`.
pub fn read_msg<R: BufRead>(r: &mut R) -> io::Result<Option<Json>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    Json::parse(line.trim_end_matches(['\r', '\n']))
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrips_documents_over_a_byte_pipe() {
        let doc = Json::parse(r#"{"get":[3,1],"x":[0.1,-0.0,1e-300,null]}"#).unwrap();
        let mut buf = Vec::new();
        write_msg(&mut buf, &doc).unwrap();
        write_msg(&mut buf, &Json::Null).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_msg(&mut r).unwrap(), Some(doc));
        assert_eq!(read_msg(&mut r).unwrap(), Some(Json::Null));
        assert_eq!(read_msg(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn f64_payloads_survive_framing_bitwise() {
        let xs = [0.1, -1.0 / 3.0, 1e-300, f64::MIN_POSITIVE, -0.0];
        let doc = Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        let mut buf = Vec::new();
        write_msg(&mut buf, &doc).unwrap();
        let back = read_msg(&mut BufReader::new(&buf[..])).unwrap().unwrap();
        for (x, v) in xs.iter().zip(back.as_arr().unwrap()) {
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn malformed_lines_surface_as_invalid_data() {
        let mut r = BufReader::new(&b"{\"unterminated\n"[..]);
        let err = read_msg(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
