//! A minimal, dependency-free JSON value type for the line-delimited wire
//! protocol — the same "hand-rolled, offline" policy as the rest of the
//! workspace (see DESIGN.md §7): no serde in the container, and the protocol
//! needs only a small, strict subset.
//!
//! * Parsing is recursive-descent over the full JSON grammar (objects,
//!   arrays, strings with escapes incl. `\uXXXX` and surrogate pairs,
//!   numbers, booleans, null), with a depth limit so a hostile request
//!   cannot blow the stack.
//! * Rendering is compact (no whitespace). Numbers render through Rust's
//!   shortest-roundtrip `{:?}` formatting, so an `f64` survives a
//!   client→server→client trip bit-for-bit — which is what keeps
//!   fingerprints computed from parsed specs identical to the client's.
//!   Non-finite numbers (JSON has none) render as `null`.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64 {
            Some(x as usize)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("lone high surrogate".to_string());
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| "invalid codepoint".to_string())?,
                        );
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                }
            }
            Some(&c) => {
                // Copy a full UTF-8 scalar (the input is a &str, so bytes
                // form valid sequences).
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&b[*pos..*pos + len])
                    .map_err(|_| "invalid utf8 in string".to_string())?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > b.len() {
        return Err("truncated \\u escape".to_string());
    }
    let s = std::str::from_utf8(&b[*pos..*pos + 4]).map_err(|_| "invalid utf8".to_string())?;
    let v = u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u escape {s:?}"))?;
    *pos += 4;
    Ok(v)
}

/// Append a JSON-escaped string (with quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a number in shortest-roundtrip form (`null` for non-finite values
/// — JSON cannot represent them; the protocol uses `null` limits for `±inf`
/// explicitly, see the `tcp` module).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s);
        f.write_str(&s)
    }
}

fn render(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => write_f64(out, *x),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"id":7,"spec":{"grid":4,"kernel":"exponential","range":0.1},"a":[null,-1.5],"b":[2.0,null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_usize(), Some(7));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("kernel").unwrap().as_str(), Some("exponential"));
        assert_eq!(spec.get("range").unwrap().as_f64(), Some(0.1));
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Json::Null);
        assert_eq!(a[1].as_f64(), Some(-1.5));
    }

    #[test]
    fn roundtrips_f64_bitwise() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            1e-300,
            -2.5e17,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
            0.0,
            -0.0,
        ] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert!(back.to_bits() == x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let src = r#"{"s":"a\"b\\c\nd","arr":[1.0,true,false,null],"nested":{"k":[{"x":1.0}]}}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn string_escapes_and_unicode() {
        let v = Json::parse(r#""héllo A 😀 ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo A 😀 ✓"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1} extra",
            "nul",
            "1.2.3",
            "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Depth bomb: 100 nested arrays exceeds MAX_DEPTH.
        let bomb = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }
}
