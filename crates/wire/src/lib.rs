//! # wire — the shared bit-exact wire encoding
//!
//! Both network layers of the workspace — the serving front-end
//! (`mvn-service::tcp`) and the distributed runtime (`mvn-dist`) — speak
//! line-delimited JSON over `std`-only TCP, with `f64` values rendered in
//! Rust's shortest-roundtrip form so a number survives any number of
//! encode/decode trips bit-for-bit. That encoding used to live inside
//! `mvn-service`; it is factored out here so the two transports cannot drift
//! apart:
//!
//! * [`json`] — the dependency-free JSON value type, recursive-descent
//!   parser and compact renderer (bitwise `f64` round-trips, depth-limited
//!   parsing).
//! * [`frame`] — one-JSON-document-per-line framing over any
//!   `Read`/`Write` pair, shared by the tile transport and usable by any
//!   future peer protocol.

pub mod frame;
pub mod json;

pub use frame::{read_msg, read_msg_bounded, write_msg, FrameError, MAX_FRAME_BYTES};
pub use json::Json;
