//! Confidence-region detection on a synthetic partially observed field — the
//! workflow of the paper's Fig. 1 on a laptop-scale problem.
//!
//! ```bash
//! cargo run --release --example confidence_region_synthetic
//! ```

use excursion::{
    correlation_factor_dense, detect_confidence_regions, excursion_set, find_excursion_set,
    mc_validate, CrdConfig,
};
use geostat::{
    posterior_update, regular_grid, simulate_field, simulate_observations, CovarianceKernel,
};
use mvn_core::{MvnConfig, MvnEngine};

fn main() {
    // 1. Simulate a latent field on a 24x24 grid and observe 20% of the sites
    //    with noise (sd 0.5), as in the paper's synthetic study.
    let locations = regular_grid(24, 24);
    let n = locations.len();
    let kernel = CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.1,
    };
    let field = simulate_field(&locations, &kernel, 0.0, 42);
    let obs = simulate_observations(&field, n / 5, 0.5, 43);
    println!(
        "simulated {n} sites, observed {} of them",
        obs.indices.len()
    );

    // 2. Posterior of the latent field given the noisy observations (Eq. 7-8).
    let prior_cov = kernel.dense_covariance(&locations, 1e-9);
    let post = posterior_update(&prior_cov, &vec![0.0; n], &obs.indices, &obs.values, 0.5);

    // 3. Detect where the field exceeds u = 0.5 with 95% joint confidence.
    //    One MvnEngine carries the whole session: its worker pool is created
    //    once and shared by the confidence sweep (batched into a single task
    //    graph), the bisection probes and the MC validation below.
    let engine = MvnEngine::builder().build().expect("engine");
    let (factor, sd) = correlation_factor_dense(&post.cov, 96);
    let cfg = CrdConfig {
        threshold: 0.5,
        alpha: 0.05,
        levels: 15,
        mvn: MvnConfig::with_samples(4_000),
        ..Default::default()
    };
    let result = detect_confidence_regions(&engine, &factor, &post.mean, &sd, &cfg);
    let marginal_count = result.marginal.iter().filter(|&&p| p >= 0.95).count();
    let region = excursion_set(&result, cfg.alpha);
    println!("marginal-probability region (P > u marginally >= 0.95): {marginal_count} sites");
    println!(
        "joint confidence region E+ (u=0.5, 1-alpha=0.95):        {} sites",
        region.len()
    );

    // 4. The same region located directly by bisection (O(log n) MVN calls).
    let (bisect_region, joint_prob) = find_excursion_set(&engine, &factor, &post.mean, &sd, &cfg);
    println!(
        "bisection search: {} sites with joint exceedance probability {:.4}",
        bisect_region.len(),
        joint_prob
    );

    // 5. Monte-Carlo validation: the whole detected region should exceed the
    //    threshold in ~95% of posterior samples.
    let v = mc_validate(
        &engine, &factor, &post.mean, &sd, &region, 0.5, 30_000, 500, 7,
    );
    println!(
        "MC validation: p_hat = {:.4} (target {:.2}, standard error {:.4})",
        v.p_hat,
        1.0 - cfg.alpha,
        v.std_error
    );
}
