//! Quickstart: estimate a high-dimensional multivariate normal probability
//! with the dense and the TLR back-end and compare against the naive
//! Monte-Carlo baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use geostat::{regular_grid, CovarianceKernel};
use mvn_core::{mvn_prob_dense_fused, mvn_prob_mc, mvn_prob_tlr, MvnConfig};
use tlr::CompressionTol;

fn main() {
    // 1. A spatial problem: 900 locations on a regular grid with an
    //    exponential covariance (the paper's "medium correlation" setting).
    let locations = regular_grid(30, 30);
    let n = locations.len();
    let kernel = CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.1,
    };

    // 2. The probability that the field exceeds 0 at *every* location —
    //    lower limits 0, upper limits +inf.
    let a = vec![0.0; n];
    let b = vec![f64::INFINITY; n];
    let cfg = MvnConfig {
        sample_size: 5_000,
        ..Default::default()
    };

    // 3. Dense path: assemble the covariance in tiled form and run the fused
    //    factor+sweep pipeline — Cholesky tasks and PMVN panel tasks execute
    //    as one dependency-inferred task graph, so early panel sweeping
    //    overlaps the trailing factorization. (The staged alternative —
    //    `tile_la::potrf_tiled` followed by `mvn_prob_dense` — produces
    //    bitwise-identical results.)
    let mut sigma = kernel.tiled_covariance(&locations, 128, 1e-9);
    let dense = mvn_prob_dense_fused(&mut sigma, &a, &b, &cfg).expect("SPD");
    println!(
        "dense PMVN : P = {:.6e}  (std error {:.1e}, {} samples, fused factor+sweep)",
        dense.prob, dense.std_error, dense.samples
    );

    // 4. TLR path: same, but the covariance is compressed at tolerance 1e-3
    //    before the factorization (the paper's fast mode). Shown here in the
    //    staged form to demonstrate both APIs.
    let mut sigma_tlr =
        kernel.tlr_covariance(&locations, 128, 1e-9, CompressionTol::Absolute(1e-3), 64);
    tlr::potrf_tlr(&mut sigma_tlr, 1).expect("SPD");
    let tlr = mvn_prob_tlr(&sigma_tlr, &a, &b, &cfg);
    println!(
        "TLR   PMVN : P = {:.6e}  (std error {:.1e}, compression ratio {:.2})",
        tlr.prob,
        tlr.std_error,
        sigma_tlr.compression_ratio()
    );

    // 5. Naive Monte-Carlo baseline for comparison (impractical in truly high
    //    dimensions, which is the paper's motivation for the SOV algorithm).
    let mut sigma_mc = kernel.tiled_covariance(&locations, 128, 1e-9);
    tile_la::potrf_tiled(&mut sigma_mc, 1).expect("SPD");
    let mc = mvn_prob_mc(&sigma_mc, &a, &b, &MvnConfig::with_samples(200_000));
    println!(
        "naive MC   : P = {:.6e}  (std error {:.1e}, {} samples)",
        mc.prob, mc.std_error, mc.samples
    );

    println!(
        "\ndense vs TLR difference: {:.2e}",
        (dense.prob - tlr.prob).abs()
    );
}
