//! Quickstart: estimate a high-dimensional multivariate normal probability
//! with the dense and the TLR back-end and compare against the naive
//! Monte-Carlo baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use geostat::{regular_grid, CovarianceKernel};
use mvn_core::{mvn_prob_mc, MvnConfig, MvnEngine, Problem};
use tlr::CompressionTol;

fn main() {
    // 1. A spatial problem: 900 locations on a regular grid with an
    //    exponential covariance (the paper's "medium correlation" setting).
    let locations = regular_grid(30, 30);
    let n = locations.len();
    let kernel = CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.1,
    };

    // 2. The probability that the field exceeds 0 at *every* location —
    //    lower limits 0, upper limits +inf.
    let a = vec![0.0; n];
    let b = vec![f64::INFINITY; n];
    let cfg = MvnConfig {
        sample_size: 5_000,
        ..Default::default()
    };

    // 3. One MvnEngine is the session: it owns a persistent worker pool that
    //    every factorization and solve below reuses (no per-call thread
    //    setup). Dense path: factor once and run the fused factor+sweep
    //    pipeline — Cholesky tasks and PMVN panel tasks execute as one
    //    dependency-inferred task graph, so early panel sweeping overlaps the
    //    trailing factorization. (The staged alternative — `factor_dense`
    //    followed by `solve` — and the old free functions produce
    //    bitwise-identical results.)
    let engine = MvnEngine::builder().config(cfg).build().expect("engine");
    let mut sigma = kernel.tiled_covariance(&locations, 128, 1e-9);
    let dense = engine.factor_prob_dense(&mut sigma, &a, &b).expect("SPD");
    println!(
        "dense PMVN : P = {:.6e}  (std error {:.1e}, {} samples, fused factor+sweep)",
        dense.prob, dense.std_error, dense.samples
    );

    // 4. TLR path: the covariance is compressed at tolerance 1e-3 before the
    //    factorization (the paper's fast mode). Shown in the staged session
    //    form: factor once into a reusable handle, then answer a whole batch
    //    of queries in one task graph.
    let sigma_tlr =
        kernel.tlr_covariance(&locations, 128, 1e-9, CompressionTol::Absolute(1e-3), 64);
    let compression_ratio = sigma_tlr.compression_ratio();
    let factor = engine.factor_tlr(sigma_tlr).expect("SPD");
    let tlr = engine.solve(&factor, &a, &b);
    println!(
        "TLR   PMVN : P = {:.6e}  (std error {:.1e}, compression ratio {:.2})",
        tlr.prob, tlr.std_error, compression_ratio
    );
    let thresholds = [-0.5, 0.0, 0.5, 1.0];
    let batch = engine.solve_batch(
        &factor,
        &thresholds
            .iter()
            .map(|&u| Problem::new(vec![u; n], vec![f64::INFINITY; n]))
            .collect::<Vec<_>>(),
    );
    for (u, r) in thresholds.iter().zip(&batch) {
        println!("  batched  P(all sites > {u:4.1}) = {:.6e}", r.prob);
    }

    // 5. Naive Monte-Carlo baseline for comparison (impractical in truly high
    //    dimensions, which is the paper's motivation for the SOV algorithm).
    let mut sigma_mc = kernel.tiled_covariance(&locations, 128, 1e-9);
    tile_la::potrf_tiled(&mut sigma_mc, 1).expect("SPD");
    let mc = mvn_prob_mc(&sigma_mc, &a, &b, &MvnConfig::with_samples(200_000));
    println!(
        "naive MC   : P = {:.6e}  (std error {:.1e}, {} samples)",
        mc.prob, mc.std_error, mc.samples
    );

    println!(
        "\ndense vs TLR difference: {:.2e}",
        (dense.prob - tlr.prob).abs()
    );
}
