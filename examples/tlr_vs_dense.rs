//! TLR vs dense: accuracy/speed trade-off of the tile-low-rank approximation
//! for the MVN probability, across compression tolerances (the paper's central
//! ablation), plus the rank structure behind it and a simulated
//! distributed-memory projection.
//!
//! ```bash
//! cargo run --release --example tlr_vs_dense
//! ```

use distsim::{pmvn_task_graph, simulate, ClusterSpec, FactorKind, ProblemSpec};
use geostat::{regular_grid, CovarianceKernel};
use mvn_core::{mvn_prob_dense, mvn_prob_tlr, MvnConfig};
use std::time::Instant;
use tlr::{CompressionTol, RankStats};

fn main() {
    let locations = regular_grid(32, 32);
    let n = locations.len();
    let kernel = CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.234, // strong correlation: best case for TLR
    };
    let a = vec![0.0; n];
    let b = vec![f64::INFINITY; n];
    let cfg = MvnConfig::with_samples(4_000);
    let nb = 128;

    // Dense reference.
    let t = Instant::now();
    let mut sigma = kernel.tiled_covariance(&locations, nb, 1e-9);
    tile_la::potrf_tiled(&mut sigma, 1).unwrap();
    let dense = mvn_prob_dense(&sigma, &a, &b, &cfg);
    let t_dense = t.elapsed().as_secs_f64();
    println!(
        "dense      : P = {:.6e}   total {:.2}s",
        dense.prob, t_dense
    );

    // TLR at several tolerances.
    println!("\n tolerance   probability      |diff vs dense|   time (s)   mean rank");
    for tol in [1e-1, 1e-2, 1e-3, 1e-5] {
        let t = Instant::now();
        let mut tlr =
            kernel.tlr_covariance(&locations, nb, 1e-9, CompressionTol::Absolute(tol), nb / 2);
        tlr::potrf_tlr(&mut tlr, 1).unwrap();
        let r = mvn_prob_tlr(&tlr, &a, &b, &cfg);
        let secs = t.elapsed().as_secs_f64();
        let ranks = RankStats::from_matrix(&tlr);
        println!(
            "  {tol:7.0e}   {:.6e}   {:.3e}        {secs:7.2}    {:6.1}",
            r.prob,
            (r.prob - dense.prob).abs(),
            ranks.mean_off_diagonal_rank()
        );
    }

    // What the same trade-off looks like at paper scale on a simulated cluster.
    println!("\nsimulated 64-node Cray XC40, n = 102,400, QMC N = 10,000:");
    let cluster = ClusterSpec::cray_xc40(64);
    for (label, kind) in [
        ("dense", FactorKind::Dense),
        ("TLR  ", FactorKind::Tlr { mean_rank: 20 }),
    ] {
        let spec = ProblemSpec {
            n: 102_400,
            tile_size: 320,
            qmc_samples: 10_000,
            panel_width: 320,
            kind,
        };
        let report = simulate(&pmvn_task_graph(&spec, &cluster), &cluster);
        println!(
            "  {label}: predicted {:.1}s  (parallel efficiency {:.0}%, {:.1} GB moved)",
            report.makespan,
            report.efficiency * 100.0,
            report.comm_bytes as f64 / 1e9
        );
    }
}
