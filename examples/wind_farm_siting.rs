//! Wind-farm siting: find the regions whose daily-average wind speed exceeds
//! 4 m/s with 95% joint confidence — the paper's Saudi-Arabia case study run
//! on the synthetic wind dataset.
//!
//! ```bash
//! cargo run --release --example wind_farm_siting
//! ```

use excursion::{
    correlation_factor_dense, correlation_factor_tlr, detect_confidence_regions, excursion_set,
    CrdConfig,
};
use geostat::{
    default_fluctuation_params, fit_matern_pooled, synthetic_wind_dataset, MaternParams,
};
use mvn_core::{MvnConfig, MvnEngine};
use tlr::CompressionTol;

fn main() {
    // 1. A synthetic Saudi-like wind-speed snapshot (see geostat::wind for the
    //    data substitution note).
    let wind = synthetic_wind_dataset(22, 2015, default_fluctuation_params(), 1.3);
    let n = wind.len();
    let above_threshold = wind.speed_ms.iter().filter(|&&v| v > 4.0).count();
    println!("{n} locations; {above_threshold} have raw wind speed above 4 m/s");

    // 2. Standardize and fit Matérn parameters by maximum likelihood
    //    (ExaGeoStat's role in the paper). The engine is created first so its
    //    persistent worker pool serves the hundreds of covariance
    //    factorizations inside the MLE objective as well as the detection
    //    below — no per-call thread setup.
    let engine = MvnEngine::builder().build().expect("engine");
    let (std_vals, mean, sd_scale) = wind.standardize();
    let fit = fit_matern_pooled(
        &wind.unit_locations,
        &std_vals,
        MaternParams {
            sigma2: 1.0,
            range: 0.05,
            smoothness: 1.0,
        },
        false,
        engine.pool(),
    )
    .expect("MLE should converge");
    println!(
        "fitted Matérn: sigma2 {:.3}, range {:.4}, nu {:.2}",
        fit.params.sigma2, fit.params.range, fit.params.smoothness
    );

    // 3. Detect the 95%-confidence exceedance region for u = 4 m/s with the
    //    dense and the TLR back-end and compare them.
    let u_std = (4.0 - mean) / sd_scale;
    let kernel = geostat::CovarianceKernel::Matern(fit.params);
    let cov = kernel.dense_covariance(&wind.unit_locations, 1e-8);
    let cfg = CrdConfig {
        threshold: u_std,
        alpha: 0.05,
        levels: 12,
        mvn: MvnConfig::with_samples(3_000),
        ..Default::default()
    };

    let (dense_factor, csd) = correlation_factor_dense(&cov, 88);
    let dense = detect_confidence_regions(&engine, &dense_factor, &std_vals, &csd, &cfg);
    let dense_region = excursion_set(&dense, cfg.alpha);

    let (tlr_factor, _) = correlation_factor_tlr(&cov, 88, CompressionTol::Absolute(1e-4), 44);
    let tlr = detect_confidence_regions(&engine, &tlr_factor, &std_vals, &csd, &cfg);
    let tlr_region = excursion_set(&tlr, cfg.alpha);

    let overlap = dense_region
        .iter()
        .filter(|i| tlr_region.contains(i))
        .count();
    println!(
        "confidence regions: dense {} sites, TLR {} sites, overlap {overlap}",
        dense_region.len(),
        tlr_region.len()
    );

    // 4. Report the windiest confirmed sites as candidate wind-farm locations.
    let mut candidates: Vec<usize> = dense_region.clone();
    candidates.sort_by(|&a, &b| wind.speed_ms[b].partial_cmp(&wind.speed_ms[a]).unwrap());
    println!("top candidate sites (lon, lat, speed m/s):");
    for &i in candidates.iter().take(5) {
        println!(
            "  ({:6.2}, {:5.2})  {:5.2} m/s",
            wind.locations[i].x, wind.locations[i].y, wind.speed_ms[i]
        );
    }
}
