//! A self-contained, offline stand-in for the subset of the Criterion.rs API
//! used by the `mvn-bench` harnesses. The build container has no network
//! access to crates.io, so the real crate cannot be fetched; benches are
//! written against the genuine Criterion API and work unchanged if this shim
//! is ever swapped for the real crate.
//!
//! Each benchmark is warmed up, then timed for up to `measurement_time` (or
//! `sample_size` iterations, whichever bound is hit first). Results are
//! printed both as a human-readable line and as a machine-readable JSON point
//!
//! ```json
//! {"benchmark":"group/id","mean_ns":1234.5,"samples":20}
//! ```
//!
//! so bench trajectories can be tracked by grepping `^\{"benchmark"` from the
//! bench output (see `.github/workflows/ci.yml`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark case (a name plus a parameter value).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring Criterion's display form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the closure given to `bench_function`; `iter` times the workload.
pub struct Bencher<'m> {
    measurement: &'m mut Measurement,
}

impl Bencher<'_> {
    /// Run `f` repeatedly under the active measurement configuration.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up: run for the configured warm-up window.
        let warm_deadline = Instant::now() + self.measurement.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(f());
        }
        // Measurement: up to `sample_size` samples within `measurement_time`.
        let deadline = Instant::now() + self.measurement.measurement_time;
        let mut samples = Vec::with_capacity(self.measurement.sample_size);
        for _ in 0..self.measurement.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_secs_f64());
            if Instant::now() >= deadline && !samples.is_empty() {
                break;
            }
        }
        self.measurement.samples = samples;
    }
}

#[derive(Clone)]
struct Measurement {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Default for Measurement {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            samples: Vec::new(),
        }
    }
}

fn report(full_id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{full_id:<50} <no samples>");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut line = String::new();
    let _ = write!(
        line,
        "{full_id:<50} mean {:>12.3} ms over {} samples",
        mean * 1e3,
        samples.len()
    );
    println!("{line}");
    println!(
        "{{\"benchmark\":\"{full_id}\",\"mean_ns\":{:.1},\"samples\":{}}}",
        mean * 1e9,
        samples.len()
    );
}

/// A named group of benchmarks sharing measurement configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement: Measurement,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measurement.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.measurement.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut measurement = self.measurement.clone();
        let mut f = f;
        f(&mut Bencher {
            measurement: &mut measurement,
        });
        report(&format!("{}/{}", self.name, id.id), &measurement.samples);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement: Measurement::default(),
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut measurement = Measurement::default();
        let mut f = f;
        f(&mut Bencher {
            measurement: &mut measurement,
        });
        report(name, &measurement.samples);
        self
    }
}

/// Mirror of `criterion::black_box` (the benches mostly use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| std::hint::black_box(1 + 1))
        });
        group.finish();
    }
}
