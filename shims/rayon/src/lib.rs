//! A self-contained, offline stand-in for the subset of the `rayon`
//! parallel-iterator API this workspace uses. It keeps rayon's semantics for
//! that subset — data-parallel execution across OS threads, order-preserving
//! `collect`, disjoint `&mut` access in `for_each` — while depending only on
//! `std`. The container this repo builds in has no network access to
//! crates.io, so the real rayon cannot be fetched; consumers are written
//! against the genuine rayon API and will work unchanged if this shim is ever
//! swapped for the real crate.
//!
//! Supported surface:
//!
//! * `slice.par_iter()`, `vec.par_iter()` → `.map(f).collect::<Vec<_>>()`,
//!   `.for_each(f)`, `.map(f).sum()`
//! * `slice.par_iter_mut()`, `vec.par_iter_mut()` → `.for_each(f)`
//! * `(a..b).into_par_iter()`, `vec.into_par_iter()` → same terminals as
//!   `par_iter`
//!
//! Scheduling: items are distributed dynamically over
//! `std::thread::available_parallelism()` workers via an atomic index counter
//! (single-item granularity — the workloads here are tile-sized, so per-item
//! overhead is negligible).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(i)` for every `i in 0..len` across worker threads, dynamically
/// load-balanced. `f` only needs `Sync` because each index is claimed exactly
/// once and `f` is shared by reference.
fn parallel_indices(len: usize, threads: usize, f: impl Fn(usize) + Sync) {
    if len == 0 {
        return;
    }
    let threads = threads.min(len).max(1);
    if threads == 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    return;
                }
                f_ref(i);
            });
        }
    });
}

/// Order-preserving parallel map over `0..len`.
fn parallel_map_indices<R: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    {
        let slots = SharedSlots(out.as_mut_ptr());
        let slots_ref = &slots;
        parallel_indices(len, threads, move |i| {
            // SAFETY: each index i is claimed by exactly one worker, so the
            // writes target disjoint slots; the Vec outlives the scope.
            unsafe { *slots_ref.0.add(i) = Some(f(i)) };
        });
    }
    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

struct SharedSlots<R>(*mut Option<R>);
// SAFETY: used only under the disjoint-index discipline of parallel_indices.
unsafe impl<R: Send> Sync for SharedSlots<R> {}
unsafe impl<R: Send> Send for SharedSlots<R> {}

/// The subset of rayon's `ParallelIterator` trait the workspace relies on.
/// Terminal operations evaluate eagerly on the calling thread's scope.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Consume the iterator, yielding an ordered `Vec` of its items.
    fn drive(self) -> Vec<Self::Item>;

    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
        Map<Self, F>: ParallelIterator,
    {
        self.map(f).drive();
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_driven(self.drive())
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.drive().into_iter().fold(identity(), op)
    }
}

/// Mirror of rayon's `FromParallelIterator`, limited to `Vec`.
pub trait FromParallelIterator<T> {
    fn from_driven(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_driven(items: Vec<T>) -> Self {
        items
    }
}

/// `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: IndexedSource,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        self.base.map_indexed(&self.f)
    }
}

/// Internal abstraction: a source that can hand out item `i` to exactly one
/// caller. This is what lets `par_iter_mut` distribute disjoint `&mut`
/// references safely.
pub trait IndexedSource: Sized {
    type Item: Send;
    fn map_indexed<R: Send>(self, f: &(impl Fn(Self::Item) -> R + Sync)) -> Vec<R>;
}

impl<S: IndexedSource> ParallelIterator for S {
    type Item = S::Item;
    fn drive(self) -> Vec<S::Item> {
        self.map_indexed(&|x| x)
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Shared-slice source (`par_iter`).
pub struct SliceParIter<'a, T>(&'a [T]);

impl<'a, T: Sync + 'a> IndexedSource for SliceParIter<'a, T> {
    type Item = &'a T;
    fn map_indexed<R: Send>(self, f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
        let items = self.0;
        parallel_map_indices(items.len(), num_threads(), |i| f(&items[i]))
    }
}

/// Mutable-slice source (`par_iter_mut`).
pub struct SliceParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send + 'a> IndexedSource for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    fn map_indexed<R: Send>(self, f: &(impl Fn(&'a mut T) -> R + Sync)) -> Vec<R> {
        let len = self.0.len();
        let base = SharedMutPtr(self.0.as_mut_ptr());
        let base_ref = &base;
        parallel_map_indices(len, num_threads(), move |i| {
            // SAFETY: indices are claimed exactly once, so the &mut
            // references handed to `f` are disjoint; the slice outlives the
            // parallel scope because `self` borrows it for 'a.
            f(unsafe { &mut *base_ref.0.add(i) })
        })
    }
}

struct SharedMutPtr<T>(*mut T);
// SAFETY: disjoint-index discipline as above.
unsafe impl<T: Send> Sync for SharedMutPtr<T> {}
unsafe impl<T: Send> Send for SharedMutPtr<T> {}

/// Owning source (`into_par_iter` on `Vec` / ranges).
pub struct VecParIter<T>(Vec<T>);

impl<T: Send> IndexedSource for VecParIter<T> {
    type Item = T;
    fn map_indexed<R: Send>(self, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
        let mut items: Vec<Option<T>> = self.0.into_iter().map(Some).collect();
        let len = items.len();
        let base = SharedMutPtr(items.as_mut_ptr());
        let base_ref = &base;
        parallel_map_indices(len, num_threads(), move |i| {
            // SAFETY: disjoint indices; each Option is taken exactly once.
            let item = unsafe { (*base_ref.0.add(i)).take().expect("item present") };
            f(item)
        })
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter(self)
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParallelIterator;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceParIterMut(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = SliceParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceParIterMut(self)
    }
}

pub trait IntoParallelIterator {
    type Iter: ParallelIterator;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter(self.collect())
    }
}

/// Matches `rayon::current_num_threads` (used to size worker pools).
pub fn current_num_threads() -> usize {
    num_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_range() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 257);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut v = vec![0u64; 513];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_runs_all_items() {
        let counter = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: usize = (0..1001usize).into_par_iter().sum();
        assert_eq!(s, 500_500);
    }

    #[test]
    fn owned_vec_items_are_moved() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
