//! # pmvn — parallel high-dimensional MVN probabilities & confidence regions
//!
//! Umbrella crate re-exporting the whole stack so examples and downstream users
//! can depend on a single crate:
//!
//! * [`mathx`] — special functions (Φ, Φ⁻¹, erfc, ln Γ, K_ν),
//! * [`qmc`] — quasi-Monte-Carlo point sets and RNG streams,
//! * [`task_runtime`] — the sequential-task-flow runtime (dependency-inferred
//!   task graphs, threaded executor, typed tile store),
//! * [`tile_la`] — tiled dense linear algebra and the DAG-scheduled Cholesky,
//! * [`tlr`] — tile-low-rank compression and the DAG-scheduled TLR Cholesky,
//! * [`geostat`] — covariance models, field simulation, posterior, MLE, wind data,
//! * [`mvn_core`] — the SOV / PMVN probability algorithms and the fused
//!   factor+sweep pipeline ([`mvn_core::MvnPlanner`]),
//! * [`excursion`] — confidence-region detection and MC validation,
//! * [`distsim`] — the distributed-memory performance model,
//! * [`wire`] — the shared bit-exact JSON/f64 wire layer,
//! * [`mvn_service`] — the sharded, micro-batching probability server,
//! * [`mvn_dist`] — the real multi-process distributed runtime.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! the paper-reproduction map.

pub use distsim;
pub use excursion;
pub use geostat;
pub use mathx;
pub use mvn_core;
pub use mvn_dist;
pub use mvn_service;
pub use qmc;
pub use task_runtime;
pub use tile_la;
pub use tlr;
pub use wire;
