//! Cross-crate integration tests: the full confidence-region pipeline, dense
//! vs. TLR agreement, and the MVN estimators against each other.

use excursion::{
    correlation_factor_dense, correlation_factor_tlr, detect_confidence_regions, excursion_set,
    find_excursion_set, mc_validate, CrdConfig,
};
use geostat::{
    posterior_update, regular_grid, simulate_field, simulate_observations, CovarianceKernel,
};
use mvn_core::{mvn_prob_dense, mvn_prob_genz, mvn_prob_mc, mvn_prob_tlr, MvnConfig, MvnEngine};
use tlr::CompressionTol;

fn medium_kernel() -> CovarianceKernel {
    CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.1,
    }
}

#[test]
fn all_four_mvn_estimators_agree_on_a_spatial_problem() {
    let locations = regular_grid(12, 12);
    let n = locations.len();
    let kernel = medium_kernel();
    let a = vec![-0.2; n];
    let b = vec![f64::INFINITY; n];
    let cfg = MvnConfig {
        sample_size: 20_000,
        seed: 9,
        ..Default::default()
    };

    let mut dense = kernel.tiled_covariance(&locations, 36, 1e-9);
    tile_la::potrf_tiled(&mut dense, 1).unwrap();
    let p_dense = mvn_prob_dense(&dense, &a, &b, &cfg);

    let l_full = dense.to_dense_lower();
    let p_genz = mvn_prob_genz(&l_full, &a, &b, &cfg);

    let mut tlr = kernel.tlr_covariance(&locations, 36, 1e-9, CompressionTol::Absolute(1e-6), 18);
    tlr::potrf_tlr(&mut tlr, 1).unwrap();
    let p_tlr = mvn_prob_tlr(&tlr, &a, &b, &cfg);

    let mut mc_factor = kernel.tiled_covariance(&locations, 36, 1e-9);
    tile_la::potrf_tiled(&mut mc_factor, 1).unwrap();
    let p_mc = mvn_prob_mc(&mc_factor, &a, &b, &MvnConfig::with_samples(400_000));

    let tol = 6.0 * (p_dense.std_error + p_genz.std_error + p_mc.std_error).max(3e-3);
    assert!(
        (p_dense.prob - p_genz.prob).abs() < tol,
        "dense {} vs genz {}",
        p_dense.prob,
        p_genz.prob
    );
    assert!(
        (p_dense.prob - p_tlr.prob).abs() < 2e-3,
        "dense {} vs tlr {}",
        p_dense.prob,
        p_tlr.prob
    );
    assert!(
        (p_dense.prob - p_mc.prob).abs() < tol,
        "dense {} vs mc {}",
        p_dense.prob,
        p_mc.prob
    );
}

#[test]
fn end_to_end_confidence_region_pipeline_with_posterior_and_validation() {
    // Simulate -> observe -> posterior -> detect -> validate, the complete
    // Algorithm-1 workflow of the paper.
    let locations = regular_grid(14, 14);
    let n = locations.len();
    let kernel = medium_kernel();
    let field = simulate_field(&locations, &kernel, 0.0, 7);
    let obs = simulate_observations(&field, n / 4, 0.5, 8);
    let prior = kernel.dense_covariance(&locations, 1e-9);
    let post = posterior_update(&prior, &vec![0.0; n], &obs.indices, &obs.values, 0.5);

    let (factor, sd) = correlation_factor_dense(&post.cov, 49);
    let cfg = CrdConfig {
        threshold: 0.4,
        alpha: 0.1,
        levels: 12,
        mvn: MvnConfig::with_samples(3_000),
        ..Default::default()
    };
    let engine = MvnEngine::builder().workers(2).build().unwrap();
    let result = detect_confidence_regions(&engine, &factor, &post.mean, &sd, &cfg);
    let region = excursion_set(&result, cfg.alpha);

    // The joint region is a subset of the marginal region.
    for &i in &region {
        assert!(result.marginal[i] >= 1.0 - cfg.alpha - 0.05);
    }

    // The confidence-function sweep (with interpolation between evaluated
    // prefix lengths) and the exact bisection search agree up to a handful of
    // boundary sites.
    let (bisect_region, joint_prob) = find_excursion_set(&engine, &factor, &post.mean, &sd, &cfg);
    assert!(joint_prob >= 1.0 - cfg.alpha - 1e-9);
    assert!(
        region.len().abs_diff(bisect_region.len()) <= n / 20 + 2,
        "sweep region {} vs bisection region {}",
        region.len(),
        bisect_region.len()
    );

    // The MC-validated joint exceedance probability of the bisection region is
    // compatible with 1-alpha (the bisection region is the one whose joint
    // probability is certified to be >= 1-alpha).
    let v = mc_validate(
        &engine,
        &factor,
        &post.mean,
        &sd,
        &bisect_region,
        0.4,
        40_000,
        500,
        3,
    );
    assert!(
        v.p_hat >= 1.0 - cfg.alpha - 4.0 * v.std_error - 0.03,
        "validated probability {} too far below {}",
        v.p_hat,
        1.0 - cfg.alpha
    );
}

#[test]
fn dense_and_tlr_confidence_functions_agree_as_in_the_paper() {
    let locations = regular_grid(12, 12);
    let n = locations.len();
    let kernel = CovarianceKernel::Exponential {
        sigma2: 1.0,
        range: 0.234, // strong correlation
    };
    let cov = kernel.dense_covariance(&locations, 1e-9);
    let mean: Vec<f64> = locations.iter().map(|l| 1.0 - 1.5 * l.x).collect();

    let (fd, sd) = correlation_factor_dense(&cov, 48);
    let (ft, _) = correlation_factor_tlr(&cov, 48, CompressionTol::Absolute(1e-3), 24);
    let cfg = CrdConfig {
        threshold: 0.0,
        alpha: 0.05,
        levels: 12,
        mvn: MvnConfig::with_samples(4_000),
        ..Default::default()
    };
    let engine = MvnEngine::builder().workers(2).build().unwrap();
    let rd = detect_confidence_regions(&engine, &fd, &mean, &sd, &cfg);
    let rt = detect_confidence_regions(&engine, &ft, &mean, &sd, &cfg);
    let max_diff = rd
        .confidence
        .iter()
        .zip(&rt.confidence)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 0.02,
        "dense and TLR confidence functions should be close (max diff {max_diff})"
    );
    assert_eq!(
        excursion_set(&rd, 0.05).len() as i64 - excursion_set(&rt, 0.05).len() as i64,
        0,
        "regions should agree exactly at this scale"
    );

    // Bisection agrees with the sweep within one site.
    let (region_b, _) = find_excursion_set(&engine, &fd, &mean, &sd, &cfg);
    let sweep_len = excursion_set(&rd, 0.05).len();
    assert!(region_b.len().abs_diff(sweep_len) <= (n / 12).max(1));
}

#[test]
fn one_engine_session_carries_factorization_solves_and_batches() {
    // The session workflow the MvnEngine API is built for: factor once, then
    // answer many probability queries (singly and batched) on one pool, with
    // results bitwise identical to the one-shot free functions.
    let locations = regular_grid(10, 10);
    let n = locations.len();
    let kernel = medium_kernel();
    let cfg = MvnConfig {
        sample_size: 4_000,
        seed: 31,
        ..Default::default()
    };

    let engine = MvnEngine::builder()
        .workers(2)
        .config(MvnConfig {
            scheduler: mvn_core::Scheduler::Dag { workers: 2 },
            ..cfg
        })
        .build()
        .unwrap();
    let factor = engine
        .factor_dense(kernel.tiled_covariance(&locations, 25, 1e-9))
        .unwrap();

    // Free-function reference (fresh scheduling per call).
    let mut reference_factor = kernel.tiled_covariance(&locations, 25, 1e-9);
    tile_la::potrf_tiled(&mut reference_factor, 1).unwrap();

    let thresholds = [-0.5, -0.2, 0.0, 0.3];
    let problems: Vec<mvn_core::Problem> = thresholds
        .iter()
        .map(|&t| mvn_core::Problem::new(vec![t; n], vec![f64::INFINITY; n]))
        .collect();
    let batch = engine.solve_batch(&factor, &problems);
    let before = engine.pool_stats();
    for (p, r) in problems.iter().zip(&batch) {
        let single = engine.solve(&factor, &p.a, &p.b);
        let free = mvn_prob_dense(&reference_factor, &p.a, &p.b, &cfg);
        assert!(r.prob.to_bits() == single.prob.to_bits());
        assert!(r.prob.to_bits() == free.prob.to_bits());
    }
    // All of the above ran on the session pool, which never grew.
    let after = engine.pool_stats();
    assert_eq!(after.workers, before.workers);
    assert_eq!(
        after.graphs_run,
        before.graphs_run + thresholds.len() as u64
    );
}
