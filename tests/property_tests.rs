//! Workspace-level property-based tests on the core invariants, using proptest.

use mathx::{norm_cdf, norm_quantile};
use mvn_core::{mvn_prob_dense, MvnConfig};
use proptest::prelude::*;
use tile_la::{max_abs_diff, potrf_tiled, DenseMatrix, SymTileMatrix};
use tlr::{compress_dense, lr_add_recompress, CompressionTol};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Φ and Φ⁻¹ are inverse functions over the bulk of the distribution.
    #[test]
    fn normal_cdf_quantile_roundtrip(p in 1e-12f64..1.0) {
        let x = norm_quantile(p);
        let p2 = norm_cdf(x);
        prop_assert!((p - p2).abs() < 1e-9, "p={p}, roundtrip={p2}");
    }

    /// Φ is monotone non-decreasing.
    #[test]
    fn normal_cdf_is_monotone(a in -30.0f64..30.0, delta in 0.0f64..5.0) {
        prop_assert!(norm_cdf(a + delta) >= norm_cdf(a));
    }

    /// The tiled Cholesky factorization reconstructs the matrix it factored,
    /// for random SPD matrices of random sizes and tile sizes.
    #[test]
    fn tiled_cholesky_reconstructs(n in 4usize..40, nb in 2usize..16, range in 2.0f64..20.0) {
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / range).exp() + if i == j { 0.05 } else { 0.0 }
        };
        let mut a = SymTileMatrix::from_fn(n, nb, f);
        potrf_tiled(&mut a, 1).unwrap();
        let l = a.to_dense_lower();
        let rec = l.matmul_nt(&l);
        let orig = DenseMatrix::from_fn(n, n, f);
        prop_assert!(max_abs_diff(&rec, &orig) < 1e-8);
    }

    /// Truncated-SVD tile compression never exceeds its error budget.
    #[test]
    fn compression_error_within_tolerance(
        m in 4usize..24,
        n in 4usize..24,
        offset in 0usize..100,
        tol_exp in 1u32..8,
    ) {
        let tol = 10f64.powi(-(tol_exp as i32));
        let tile = DenseMatrix::from_fn(m, n, |i, j| {
            (-((i as f64 - (j + offset) as f64).abs()) / 30.0).exp()
        });
        let lr = compress_dense(&tile, CompressionTol::Absolute(tol), usize::MAX);
        let mut diff = lr.to_dense();
        diff.add_scaled(-1.0, &tile);
        prop_assert!(diff.frobenius_norm() <= tol * 1.5 + 1e-12);
    }

    /// Low-rank addition with recompression approximates the exact sum.
    #[test]
    fn lowrank_addition_is_accurate(seed in 0u64..1000, m in 4usize..16, k in 1usize..4) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mk = |rows: usize, cols: usize, f: &mut dyn FnMut() -> f64| {
            DenseMatrix::from_fn(rows, cols, |_, _| f())
        };
        let a = tlr::LowRankBlock::new(mk(m, k, &mut next), mk(m, k, &mut next));
        let b = tlr::LowRankBlock::new(mk(m, k, &mut next), mk(m, k, &mut next));
        let sum = lr_add_recompress(&a, &b, CompressionTol::Absolute(1e-10), usize::MAX);
        let mut want = a.to_dense();
        want.add_scaled(1.0, &b.to_dense());
        prop_assert!(max_abs_diff(&sum.to_dense(), &want) < 1e-8);
    }

    /// MVN probabilities are in [0,1], equal to 1 on the whole space, and
    /// monotone in the integration box.
    #[test]
    fn mvn_probability_monotone_in_the_box(n in 2usize..12, lower in -2.0f64..0.5) {
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / 5.0).exp() + if i == j { 0.01 } else { 0.0 }
        };
        let mut l = SymTileMatrix::from_fn(n, 4, f);
        potrf_tiled(&mut l, 1).unwrap();
        let cfg = MvnConfig { sample_size: 2000, seed: 1, ..Default::default() };
        let b = vec![f64::INFINITY; n];
        let p_small = mvn_prob_dense(&l, &vec![lower + 0.5; n], &b, &cfg).prob;
        let p_large = mvn_prob_dense(&l, &vec![lower; n], &b, &cfg).prob;
        prop_assert!((0.0..=1.0).contains(&p_small));
        prop_assert!((0.0..=1.0).contains(&p_large));
        // Enlarging the box (lower limit decreases) cannot decrease the probability.
        prop_assert!(p_large >= p_small - 1e-9);
        let whole = mvn_prob_dense(&l, &vec![f64::NEG_INFINITY; n], &b, &cfg).prob;
        prop_assert!((whole - 1.0).abs() < 1e-12);
    }

    /// Marginal exceedance probabilities bound the joint prefix probabilities.
    #[test]
    fn joint_probability_never_exceeds_smallest_marginal(n in 3usize..10, u in -1.0f64..1.0) {
        let f = |i: usize, j: usize| if i == j { 1.0 } else { 0.4 };
        let mut l = SymTileMatrix::from_fn(n, 3, f);
        potrf_tiled(&mut l, 1).unwrap();
        let cfg = MvnConfig { sample_size: 4000, seed: 2, ..Default::default() };
        let a = vec![u; n];
        let b = vec![f64::INFINITY; n];
        let joint = mvn_prob_dense(&l, &a, &b, &cfg).prob;
        let marginal = 1.0 - norm_cdf(u);
        prop_assert!(joint <= marginal + 0.01, "joint {joint} vs marginal {marginal}");
    }
}
