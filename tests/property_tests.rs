//! Workspace-level property-style tests on the core invariants.
//!
//! The container this repo builds in has no access to crates.io, so instead
//! of `proptest` the case generation is a deterministic parameter sweep driven
//! by the workspace's own seeded RNG — same invariants, reproducible cases.

use mathx::{norm_cdf, norm_quantile};
use mvn_core::{mvn_prob_dense, MvnConfig};
use qmc::Xoshiro256pp;
use tile_la::{max_abs_diff, potrf_tiled, DenseMatrix, SymTileMatrix};
use tlr::{compress_dense, lr_add_recompress, CompressionTol};

/// Deterministic case driver over the workspace RNG.
struct CaseStream {
    rng: Xoshiro256pp,
}

impl CaseStream {
    fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from(seed),
        }
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }
}

const CASES: usize = 32;

/// Φ and Φ⁻¹ are inverse functions over the bulk of the distribution.
#[test]
fn normal_cdf_quantile_roundtrip() {
    let mut s = CaseStream::new(1);
    for _ in 0..CASES {
        let p = s.in_range(1e-12, 1.0 - 1e-12);
        let x = norm_quantile(p);
        let p2 = norm_cdf(x);
        assert!((p - p2).abs() < 1e-9, "p={p}, roundtrip={p2}");
    }
}

/// Φ is monotone non-decreasing.
#[test]
fn normal_cdf_is_monotone() {
    let mut s = CaseStream::new(2);
    for _ in 0..CASES {
        let a = s.in_range(-30.0, 30.0);
        let delta = s.in_range(0.0, 5.0);
        assert!(norm_cdf(a + delta) >= norm_cdf(a));
    }
}

/// The tiled Cholesky factorization reconstructs the matrix it factored, for
/// random SPD matrices of random sizes and tile sizes.
#[test]
fn tiled_cholesky_reconstructs() {
    let mut s = CaseStream::new(3);
    for _ in 0..CASES {
        let n = s.usize_in(4, 40);
        let nb = s.usize_in(2, 16);
        let range = s.in_range(2.0, 20.0);
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / range).exp() + if i == j { 0.05 } else { 0.0 }
        };
        let mut a = SymTileMatrix::from_fn(n, nb, f);
        potrf_tiled(&mut a, 1).unwrap();
        let l = a.to_dense_lower();
        let rec = l.matmul_nt(&l);
        let orig = DenseMatrix::from_fn(n, n, f);
        assert!(
            max_abs_diff(&rec, &orig) < 1e-8,
            "n={n}, nb={nb}, range={range}"
        );
    }
}

/// Truncated-SVD tile compression never exceeds its error budget.
#[test]
fn compression_error_within_tolerance() {
    let mut s = CaseStream::new(4);
    for _ in 0..CASES {
        let m = s.usize_in(4, 24);
        let n = s.usize_in(4, 24);
        let offset = s.usize_in(0, 100);
        let tol = 10f64.powi(-(s.usize_in(1, 8) as i32));
        let tile = DenseMatrix::from_fn(m, n, |i, j| {
            (-((i as f64 - (j + offset) as f64).abs()) / 30.0).exp()
        });
        let lr = compress_dense(&tile, CompressionTol::Absolute(tol), usize::MAX);
        let mut diff = lr.to_dense();
        diff.add_scaled(-1.0, &tile);
        assert!(
            diff.frobenius_norm() <= tol * 1.5 + 1e-12,
            "m={m}, n={n}, offset={offset}, tol={tol}"
        );
    }
}

/// Low-rank addition with recompression approximates the exact sum.
#[test]
fn lowrank_addition_is_accurate() {
    let mut s = CaseStream::new(5);
    for _ in 0..CASES {
        let m = s.usize_in(4, 16);
        let k = s.usize_in(1, 4);
        let mut mk = |rows: usize, cols: usize| {
            DenseMatrix::from_fn(rows, cols, |_, _| s.in_range(-1.0, 1.0))
        };
        let a = tlr::LowRankBlock::new(mk(m, k), mk(m, k));
        let b = tlr::LowRankBlock::new(mk(m, k), mk(m, k));
        let sum = lr_add_recompress(&a, &b, CompressionTol::Absolute(1e-10), usize::MAX);
        let mut want = a.to_dense();
        want.add_scaled(1.0, &b.to_dense());
        assert!(max_abs_diff(&sum.to_dense(), &want) < 1e-8, "m={m}, k={k}");
    }
}

/// MVN probabilities are in [0,1], equal to 1 on the whole space, and monotone
/// in the integration box.
#[test]
fn mvn_probability_monotone_in_the_box() {
    let mut s = CaseStream::new(6);
    for _ in 0..8 {
        let n = s.usize_in(2, 12);
        let lower = s.in_range(-2.0, 0.5);
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / 5.0).exp() + if i == j { 0.01 } else { 0.0 }
        };
        let mut l = SymTileMatrix::from_fn(n, 4, f);
        potrf_tiled(&mut l, 1).unwrap();
        let cfg = MvnConfig {
            sample_size: 2000,
            seed: 1,
            ..Default::default()
        };
        let b = vec![f64::INFINITY; n];
        let p_small = mvn_prob_dense(&l, &vec![lower + 0.5; n], &b, &cfg).prob;
        let p_large = mvn_prob_dense(&l, &vec![lower; n], &b, &cfg).prob;
        assert!((0.0..=1.0).contains(&p_small));
        assert!((0.0..=1.0).contains(&p_large));
        // Enlarging the box (lower limit decreases) cannot decrease the
        // probability.
        assert!(p_large >= p_small - 1e-9, "n={n}, lower={lower}");
        let whole = mvn_prob_dense(&l, &vec![f64::NEG_INFINITY; n], &b, &cfg).prob;
        assert!((whole - 1.0).abs() < 1e-12);
    }
}

/// Marginal exceedance probabilities bound the joint prefix probabilities.
#[test]
fn joint_probability_never_exceeds_smallest_marginal() {
    let mut s = CaseStream::new(7);
    for _ in 0..8 {
        let n = s.usize_in(3, 10);
        let u = s.in_range(-1.0, 1.0);
        let f = |i: usize, j: usize| if i == j { 1.0 } else { 0.4 };
        let mut l = SymTileMatrix::from_fn(n, 3, f);
        potrf_tiled(&mut l, 1).unwrap();
        let cfg = MvnConfig {
            sample_size: 4000,
            seed: 2,
            ..Default::default()
        };
        let a = vec![u; n];
        let b = vec![f64::INFINITY; n];
        let joint = mvn_prob_dense(&l, &a, &b, &cfg).prob;
        let marginal = 1.0 - norm_cdf(u);
        assert!(
            joint <= marginal + 0.01,
            "n={n}: joint {joint} vs marginal {marginal}"
        );
    }
}

/// The fused factor+sweep pipeline agrees bitwise with the staged flow on
/// randomly sized problems (the acceptance criterion of the DAG refactor).
#[test]
fn fused_pipeline_is_bitwise_identical_to_staged_flow() {
    let mut s = CaseStream::new(8);
    for _ in 0..6 {
        let n = s.usize_in(8, 40);
        let nb = s.usize_in(3, 12);
        let range = s.in_range(3.0, 15.0);
        let f = |i: usize, j: usize| {
            let d = (i as f64 - j as f64).abs();
            (-d / range).exp() + if i == j { 0.05 } else { 0.0 }
        };
        let a = vec![s.in_range(-1.0, 0.0); n];
        let b = vec![s.in_range(0.5, 2.0); n];
        let cfg = MvnConfig {
            sample_size: 1000,
            seed: 3,
            ..Default::default()
        };
        let mut l = SymTileMatrix::from_fn(n, nb, f);
        potrf_tiled(&mut l, 1).unwrap();
        let staged = mvn_prob_dense(&l, &a, &b, &cfg);
        let mut sigma = SymTileMatrix::from_fn(n, nb, f);
        let fused = mvn_core::mvn_prob_dense_fused(&mut sigma, &a, &b, &cfg).unwrap();
        assert!(
            staged.prob.to_bits() == fused.prob.to_bits(),
            "n={n}, nb={nb}: staged {} vs fused {}",
            staged.prob,
            fused.prob
        );
    }
}
